#include "obs/leakage.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

namespace plinius::obs {

namespace detail {
std::atomic<PageTraceRecorder*> g_leak_recorder{nullptr};
}  // namespace detail

const char* to_string(LeakKind k) noexcept {
  switch (k) {
    case LeakKind::kPage: return "page";
    case LeakKind::kBranch: return "branch";
    case LeakKind::kMark: return "mark";
  }
  return "?";
}

bool operator==(const LeakEvent& a, const LeakEvent& b) {
  return a.kind == b.kind && a.value == b.value && a.count == b.count &&
         std::strcmp(a.site, b.site) == 0;
}

PageTraceRecorder::PageTraceRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

void PageTraceRecorder::append(LeakEvent ev) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(ev);
}

void PageTraceRecorder::page_range(const char* site, std::uint64_t first_page,
                                   std::uint64_t pages) {
  if (pages == 0) return;
  const std::lock_guard<std::mutex> lock(mu_);
  raw_pages_ += pages;
  if (!events_.empty()) {
    LeakEvent& last = events_.back();
    // Extend a run that continues exactly where the previous one ended in
    // the same region — sequential sweeps compress to one event.
    if (last.kind == LeakKind::kPage && std::strcmp(last.site, site) == 0 &&
        static_cast<std::uint64_t>(last.value) + last.count == first_page) {
      last.count += static_cast<std::uint32_t>(pages);
      return;
    }
  }
  append(LeakEvent{LeakKind::kPage, site, static_cast<std::uint32_t>(first_page),
                   static_cast<std::uint32_t>(pages)});
}

void PageTraceRecorder::branch(const char* site, bool taken) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++raw_branches_;
  if (!events_.empty()) {
    LeakEvent& last = events_.back();
    if (last.kind == LeakKind::kBranch && last.value == (taken ? 1u : 0u) &&
        std::strcmp(last.site, site) == 0) {
      ++last.count;
      return;
    }
  }
  append(LeakEvent{LeakKind::kBranch, site, taken ? 1u : 0u, 1});
}

void PageTraceRecorder::mark(const char* site) {
  const std::lock_guard<std::mutex> lock(mu_);
  append(LeakEvent{LeakKind::kMark, site, 0, 1});
}

LeakTrace PageTraceRecorder::events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t PageTraceRecorder::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::uint64_t PageTraceRecorder::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::uint64_t PageTraceRecorder::raw_page_events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return raw_pages_;
}

std::uint64_t PageTraceRecorder::raw_branch_events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return raw_branches_;
}

void PageTraceRecorder::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
  raw_pages_ = 0;
  raw_branches_ = 0;
}

LeakTrace record_leak_trace(const std::function<void()>& fn, std::size_t capacity) {
  ScopedLeakRecorder scope(capacity);
  fn();
  return scope.recorder().events();
}

// --------------------------------------------------------------- analyzer --

bool traces_equal(const LeakTrace& a, const LeakTrace& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

std::uint64_t trace_fingerprint(const LeakTrace& trace) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  const auto mix = [&h](const void* data, std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      h ^= p[i];
      h *= 0x100000001b3ULL;
    }
  };
  for (const LeakEvent& ev : trace) {
    const auto kind = static_cast<std::uint8_t>(ev.kind);
    mix(&kind, 1);
    mix(ev.site, std::strlen(ev.site) + 1);
    mix(&ev.value, sizeof(ev.value));
    mix(&ev.count, sizeof(ev.count));
  }
  return h;
}

namespace {

// Interns events to dense symbol ids so distance/entropy work on integer
// sequences. Site identity is the string content.
class SymbolTable {
 public:
  std::uint32_t intern(const LeakEvent& ev) {
    const Key key{ev.kind, ev.site, ev.value, ev.count};
    const auto [it, inserted] = ids_.try_emplace(key, next_);
    if (inserted) ++next_;
    return it->second;
  }

 private:
  struct Key {
    LeakKind kind;
    const char* site;
    std::uint32_t value;
    std::uint32_t count;
    bool operator<(const Key& o) const {
      if (kind != o.kind) return kind < o.kind;
      const int c = std::strcmp(site, o.site);
      if (c != 0) return c < 0;
      return std::tie(value, count) < std::tie(o.value, o.count);
    }
  };
  std::map<Key, std::uint32_t> ids_;
  std::uint32_t next_ = 0;
};

std::vector<std::uint32_t> to_symbols(const LeakTrace& trace, SymbolTable& table) {
  std::vector<std::uint32_t> out;
  out.reserve(trace.size());
  for (const LeakEvent& ev : trace) out.push_back(table.intern(ev));
  return out;
}

// Uniform subsample to at most `cap` symbols (keeps relative order).
std::vector<std::uint32_t> subsample(const std::vector<std::uint32_t>& s,
                                     std::size_t cap) {
  if (s.size() <= cap) return s;
  std::vector<std::uint32_t> out(cap);
  for (std::size_t i = 0; i < cap; ++i) {
    out[i] = s[i * s.size() / cap];
  }
  return out;
}

double levenshtein_normalized(const std::vector<std::uint32_t>& a,
                              const std::vector<std::uint32_t>& b) {
  const std::size_t n = a.size(), m = b.size();
  if (n == 0 && m == 0) return 0.0;
  if (n == 0 || m == 0) return 1.0;
  std::vector<std::size_t> prev(m + 1), cur(m + 1);
  for (std::size_t j = 0; j <= m; ++j) prev[j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return static_cast<double>(prev[m]) / static_cast<double>(std::max(n, m));
}

}  // namespace

double trace_edit_distance(const LeakTrace& a, const LeakTrace& b,
                           std::size_t max_symbols) {
  SymbolTable table;
  const auto sa = subsample(to_symbols(a, table), max_symbols);
  const auto sb = subsample(to_symbols(b, table), max_symbols);
  return levenshtein_normalized(sa, sb);
}

LeakageReport analyze_traces(std::span<const LeakTrace> traces,
                             std::size_t max_edit_symbols) {
  LeakageReport r;
  r.traces = traces.size();
  if (traces.empty()) return r;

  SymbolTable table;
  std::vector<std::vector<std::uint32_t>> symbols;
  symbols.reserve(traces.size());
  std::set<std::uint64_t> fingerprints;
  r.min_events = traces[0].size();
  for (const LeakTrace& t : traces) {
    symbols.push_back(to_symbols(t, table));
    fingerprints.insert(trace_fingerprint(t));
    r.min_events = std::min(r.min_events, t.size());
    r.max_events = std::max(r.max_events, t.size());
    for (const LeakEvent& ev : t) {
      if (ev.kind == LeakKind::kPage) ++r.page_events;
      if (ev.kind == LeakKind::kBranch) ++r.branch_events;
    }
  }
  r.distinct = fingerprints.size();

  // Pairwise distinguishability + edit distance.
  double sum_edit = 0;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    for (std::size_t j = i + 1; j < traces.size(); ++j) {
      ++r.pairs;
      const bool differ = !traces_equal(traces[i], traces[j]);
      if (differ) ++r.distinguishable_pairs;
      const double d =
          differ ? levenshtein_normalized(subsample(symbols[i], max_edit_symbols),
                                          subsample(symbols[j], max_edit_symbols))
                 : 0.0;
      sum_edit += d;
      r.max_edit_distance = std::max(r.max_edit_distance, d);
    }
  }
  if (r.pairs > 0) {
    r.mean_edit_distance = sum_edit / static_cast<double>(r.pairs);
    r.score = static_cast<double>(r.distinguishable_pairs) /
              static_cast<double>(r.pairs);
  }

  // Per-position symbol entropy over the aligned prefix: with one trace per
  // secret and a uniform secret prior, the empirical entropy of the symbol
  // at position p is the mutual information (in bits) the attacker gains
  // about the secret from observing that position.
  const std::size_t prefix = std::min<std::size_t>(r.min_events, 1u << 16);
  if (prefix > 0 && traces.size() > 1) {
    double sum_bits = 0;
    std::map<std::uint32_t, std::size_t> counts;
    for (std::size_t p = 0; p < prefix; ++p) {
      counts.clear();
      for (const auto& s : symbols) ++counts[s[p]];
      double bits = 0;
      for (const auto& [sym, c] : counts) {
        const double f = static_cast<double>(c) / static_cast<double>(symbols.size());
        bits -= f * std::log2(f);
      }
      sum_bits += bits;
    }
    r.mean_position_entropy_bits = sum_bits / static_cast<double>(prefix);
  }
  return r;
}

std::string LeakageReport::to_json() const {
  std::ostringstream os;
  os << "{\"traces\": " << traces << ", \"distinct\": " << distinct
     << ", \"pairs\": " << pairs
     << ", \"distinguishable_pairs\": " << distinguishable_pairs
     << ", \"min_events\": " << min_events << ", \"max_events\": " << max_events
     << ", \"page_events\": " << page_events
     << ", \"branch_events\": " << branch_events << ", \"mean_edit_distance\": "
     << mean_edit_distance << ", \"max_edit_distance\": " << max_edit_distance
     << ", \"mean_position_entropy_bits\": " << mean_position_entropy_bits
     << ", \"score\": " << score << "}";
  return os.str();
}

void LeakageReport::publish(Registry& reg, const Labels& labels) const {
  reg.set_gauge("leak.score", score, labels);
  reg.set_gauge("leak.traces", static_cast<double>(traces), labels);
  reg.set_gauge("leak.distinct_traces", static_cast<double>(distinct), labels);
  reg.set_gauge("leak.distinguishable_pairs",
                static_cast<double>(distinguishable_pairs), labels);
  reg.set_gauge("leak.mean_edit_distance", mean_edit_distance, labels);
  reg.set_gauge("leak.max_edit_distance", max_edit_distance, labels);
  reg.set_gauge("leak.mi_bits", mean_position_entropy_bits, labels);
  reg.set_gauge("leak.page_events", static_cast<double>(page_events), labels);
  reg.set_gauge("leak.branch_events", static_cast<double>(branch_events), labels);
}

}  // namespace plinius::obs
