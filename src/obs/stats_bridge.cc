#include "obs/stats_bridge.h"

#include "plinius/checkpoint.h"
#include "plinius/distributed.h"
#include "plinius/fleet/fleet.h"
#include "plinius/mirror.h"
#include "plinius/pm_data.h"
#include "plinius/scrub.h"
#include "plinius/trainer.h"
#include "pm/device.h"
#include "serve/fleet/fleet_server.h"
#include "serve/fleet/registry.h"
#include "serve/fleet/router.h"
#include "serve/server.h"
#include "obs/trace.h"
#include "sgx/enclave.h"

namespace plinius::obs {

void publish(Registry& reg, const Tracer& t, const Labels& labels) {
  reg.set_gauge("obs.trace.recorded", static_cast<double>(t.total_recorded()),
                labels);
  reg.set_gauge("obs.trace.evicted", static_cast<double>(t.dropped()), labels);
  reg.set_gauge("obs.trace.cancelled", static_cast<double>(t.cancelled()), labels);
}

void publish(Registry& reg, const sgx::EnclaveStats& s, const Labels& labels) {
  reg.set_counter("enclave.ecalls", s.ecalls, labels);
  reg.set_counter("enclave.ocalls", s.ocalls, labels);
  reg.set_counter("enclave.epc_faults", s.epc_faults, labels);
  reg.set_counter("enclave.bytes_copied_in", s.bytes_copied_in, labels);
  reg.set_counter("enclave.bytes_copied_out", s.bytes_copied_out, labels);
  reg.set_counter("enclave.crypto_bytes", s.crypto_bytes, labels);
  reg.set_counter("enclave.parallel_regions", s.parallel_regions, labels);
  reg.set_counter("enclave.stream_submits", s.stream_submits, labels);
}

void publish(Registry& reg, const pm::PmStats& s, const Labels& labels) {
  reg.set_counter("pm.stores", s.stores, labels);
  reg.set_counter("pm.bytes_stored", s.bytes_stored, labels);
  reg.set_counter("pm.flushes", s.flushes, labels);
  reg.set_counter("pm.lines_flushed", s.lines_flushed, labels);
  reg.set_counter("pm.fences", s.fences, labels);
  reg.set_counter("pm.bytes_read", s.bytes_read, labels);
  reg.set_counter("pm.crashes", s.crashes, labels);
  reg.set_counter("pm.media_bit_flips", s.media_bit_flips, labels);
  reg.set_counter("pm.media_torn_lines", s.media_torn_lines, labels);
  reg.set_counter("pm.media_poisoned_lines", s.media_poisoned_lines, labels);
  reg.set_counter("pm.poison_cleared", s.poison_cleared, labels);
  reg.set_counter("pm.scrub_bytes", s.scrub_bytes, labels);
}

void publish(Registry& reg, const MirrorStats& s, const Labels& labels) {
  reg.set_gauge("mirror.encrypt_ns", s.encrypt_ns, labels);
  reg.set_gauge("mirror.write_ns", s.write_ns, labels);
  reg.set_gauge("mirror.read_ns", s.read_ns, labels);
  reg.set_gauge("mirror.decrypt_ns", s.decrypt_ns, labels);
  reg.set_gauge("mirror.pipeline_stall_ns", s.pipeline_stall_ns, labels);
  reg.set_counter("mirror.save_attempts", s.save_attempts, labels);
  reg.set_counter("mirror.restore_attempts", s.restore_attempts, labels);
  reg.set_counter("mirror.saves", s.saves, labels);
  reg.set_counter("mirror.restores", s.restores, labels);
  reg.set_counter("mirror.async_saves", s.async_saves, labels);
  reg.set_counter("mirror.replica_repairs", s.replica_repairs, labels);
}

void publish(Registry& reg, const MirrorScrubReport& s, const Labels& labels) {
  reg.set_counter("scrub.mirror.buffers_checked", s.buffers_checked, labels);
  reg.set_counter("scrub.mirror.auth_failures", s.auth_failures, labels);
  reg.set_counter("scrub.mirror.repaired", s.repaired, labels);
  reg.set_counter("scrub.mirror.unrecoverable", s.unrecoverable, labels);
}

void publish(Registry& reg, const CheckpointStats& s, const Labels& labels) {
  reg.set_gauge("checkpoint.encrypt_ns", s.encrypt_ns, labels);
  reg.set_gauge("checkpoint.write_ns", s.write_ns, labels);
  reg.set_gauge("checkpoint.read_ns", s.read_ns, labels);
  reg.set_gauge("checkpoint.decrypt_ns", s.decrypt_ns, labels);
  reg.set_counter("checkpoint.save_attempts", s.save_attempts, labels);
  reg.set_counter("checkpoint.restore_attempts", s.restore_attempts, labels);
  reg.set_counter("checkpoint.saves", s.saves, labels);
  reg.set_counter("checkpoint.restores", s.restores, labels);
}

void publish(Registry& reg, const PmDataStats& s, const Labels& labels) {
  reg.set_gauge("data.decrypt_ns", s.decrypt_ns, labels);
  reg.set_counter("data.batches", s.batches, labels);
  reg.set_counter("data.records", s.records, labels);
  reg.set_counter("data.corrupt_records", s.corrupt_records, labels);
  reg.set_counter("data.resampled", s.resampled, labels);
}

void publish(Registry& reg, const ScrubReport& s, const Labels& labels) {
  reg.set_counter("scrub.header_ok", s.header_ok ? 1 : 0, labels);
  reg.set_counter("scrub.allocator_ok", s.allocator_ok ? 1 : 0, labels);
  reg.set_counter("scrub.mirror_layout_ok", s.mirror_layout_ok ? 1 : 0, labels);
  reg.set_counter("scrub.twin_restored", s.twin_restored ? 1 : 0, labels);
  reg.set_counter("scrub.twins_resynced", s.twins_resynced ? 1 : 0, labels);
  reg.set_counter("scrub.dataset_layout_ok", s.dataset_layout_ok ? 1 : 0, labels);
  reg.set_counter("scrub.corrupt_records", s.corrupt_records.size(), labels);
  reg.set_counter("scrub.poisoned_lines", s.poisoned_lines, labels);
  reg.set_counter("scrub.healthy", s.healthy() ? 1 : 0, labels);
  if (s.mirror_present) publish(reg, s.mirror, labels);
}

void publish(Registry& reg, const RecoveryReport& s, const Labels& labels) {
  reg.set_counter("recovery.tier", static_cast<std::uint64_t>(s.tier), labels);
  reg.set_counter("recovery.resume_iteration", s.resume_iteration, labels);
  reg.set_counter("recovery.replica_repairs", s.replica_repairs, labels);
  reg.set_counter("recovery.region_reformatted", s.region_reformatted ? 1 : 0, labels);
  reg.set_counter("recovery.mirror_rebuilt", s.mirror_rebuilt ? 1 : 0, labels);
  reg.set_counter("recovery.dataset_lost", s.dataset_lost ? 1 : 0, labels);
  reg.set_counter("recovery.rungs_failed", s.rungs_failed.size(), labels);
}

void publish(Registry& reg, const ClusterStats& s, const Labels& labels) {
  reg.set_counter("cluster.peer_provisions", s.peer_provisions, labels);
  reg.set_counter("cluster.peer_retries", s.peer_retries, labels);
  reg.set_counter("cluster.peer_provision_failures", s.peer_provision_failures,
                  labels);
  reg.set_counter("cluster.peer_backoff_capped", s.peer_backoff_capped, labels);
  // Gauge mirrors of the peer-channel counters so CI can assert their
  // presence with validate_obs.py --require-gauge (which checks gauges only).
  reg.set_gauge("cluster.peer_provisions",
                static_cast<double>(s.peer_provisions), labels);
  reg.set_gauge("cluster.peer_retries", static_cast<double>(s.peer_retries),
                labels);
  reg.set_gauge("cluster.peer_provision_failures",
                static_cast<double>(s.peer_provision_failures), labels);
}

void publish(Registry& reg, const fleet::FleetReport& s, const Labels& labels) {
  // Local tier-name table: the canonical to_string(RecoveryTier) lives in the
  // trainer library, which this bridge deliberately does not link against.
  static constexpr const char* kTierNames[] = {
      "none", "mirror", "replica", "ssd-checkpoint", "fresh-start", "peer"};
  reg.set_gauge("fleet.live_workers", static_cast<double>(s.live_workers),
                labels);
  reg.set_gauge("fleet.workers", static_cast<double>(s.workers.size()), labels);
  reg.set_gauge("fleet.elapsed_ns", s.elapsed_ns, labels);
  reg.set_gauge("fleet.completed", s.completed ? 1.0 : 0.0, labels);
  reg.set_counter("fleet.rounds_total", s.rounds_total, labels);
  reg.set_counter("fleet.rounds_skipped_quorum", s.rounds_skipped_quorum, labels);
  reg.set_counter("fleet.sync_rounds", s.sync_rounds, labels);
  reg.set_counter("fleet.kills", s.kills, labels);
  reg.set_counter("fleet.revives", s.revives, labels);
  reg.set_counter("fleet.executed_iterations", s.executed_iterations, labels);
  reg.set_counter("fleet.redone_iterations", s.redone_iterations, labels);
  reg.set_gauge("fleet.redone_iterations",
                static_cast<double>(s.redone_iterations), labels);
  for (std::size_t t = 0; t < s.recoveries_by_tier.size(); ++t) {
    Labels tiered = labels;
    tiered.emplace_back("tier", kTierNames[t]);
    reg.set_counter("fleet.recoveries", s.recoveries_by_tier[t], tiered);
    // Per-tier recovery histogram: one sample at the tier ordinal per revival.
    for (std::uint64_t k = 0; k < s.recoveries_by_tier[t]; ++k) {
      reg.record("fleet.recovery_tier", static_cast<sim::Nanos>(t), labels);
    }
  }
  for (const fleet::RoundLog& r : s.rounds) {
    reg.record("fleet.round_ns", r.end_ns - r.start_ns, labels);
  }
  for (const fleet::WorkerReport& w : s.workers) {
    Labels wl = labels;
    wl.emplace_back("worker", std::to_string(w.worker));
    reg.set_counter("fleet.worker.executed_iterations", w.executed_iterations, wl);
    reg.set_counter("fleet.worker.redone_iterations", w.redone_iterations, wl);
    reg.set_counter("fleet.worker.kills", w.kills, wl);
    reg.set_counter("fleet.worker.revives", w.revives, wl);
    reg.set_counter("fleet.worker.rounds_participated", w.rounds_participated, wl);
    reg.set_counter("fleet.worker.rounds_missed", w.rounds_missed, wl);
  }
  publish(reg, s.cluster, labels);
}

void publish(Registry& reg, const serve::ServerStats& s, const Labels& labels) {
  reg.set_counter("serve.arrived", s.arrived, labels);
  reg.set_counter("serve.completed", s.completed, labels);
  reg.set_counter("serve.shed_queue_full", s.shed_queue_full, labels);
  reg.set_counter("serve.shed_deadline", s.shed_deadline, labels);
  reg.set_counter("serve.expired", s.expired, labels);
  reg.set_counter("serve.auth_failed", s.auth_failed, labels);
  reg.set_counter("serve.batches", s.batches, labels);
  reg.set_counter("serve.reloads", s.reloads, labels);
  reg.set_counter("serve.reload_failures", s.reload_failures, labels);
  reg.set_gauge("serve.busy_ns", s.busy_ns, labels);
  reg.set_gauge("serve.span_ns", s.span_ns, labels);
  reg.merge_histogram("serve.latency.total", s.total_hist, labels);
  reg.merge_histogram("serve.latency.queue", s.queue_hist, labels);
  reg.merge_histogram("serve.latency.decrypt", s.decrypt_hist, labels);
  reg.merge_histogram("serve.latency.forward", s.forward_hist, labels);
  reg.merge_histogram("serve.latency.seal", s.seal_hist, labels);
  reg.merge_histogram("serve.batch_size", s.batch_hist, labels);
}

void publish(Registry& reg, const serve::fleet::RouterStats& s, const Labels& labels) {
  reg.set_counter("router.routed", s.routed, labels);
  reg.set_counter("router.shed", s.shed, labels);
  for (std::size_t c = 0; c < serve::fleet::kSloClasses; ++c) {
    Labels cl = labels;
    cl.emplace_back("class",
                    serve::fleet::to_string(static_cast<serve::fleet::SloClass>(c)));
    reg.set_counter("router.routed_by_class", s.routed_by_class[c], cl);
    reg.set_counter("router.shed_by_class", s.shed_by_class[c], cl);
  }
}

void publish(Registry& reg, const serve::fleet::RegistryStats& s, const Labels& labels) {
  reg.set_gauge("registry.versions", static_cast<double>(s.versions), labels);
  reg.set_gauge("registry.serving_version",
                static_cast<double>(s.serving_version), labels);
  reg.set_gauge("registry.sealed_bytes", static_cast<double>(s.sealed_bytes),
                labels);
  reg.set_counter("registry.publishes", s.publishes, labels);
  reg.set_counter("registry.loads", s.loads, labels);
  reg.set_counter("registry.load_failures", s.load_failures, labels);
  // Gauge mirror so CI can pin the failure series with --require-gauge.
  reg.set_gauge("registry.load_failures", static_cast<double>(s.load_failures),
                labels);
}

void publish(Registry& reg, const serve::fleet::FleetServeStats& s, const Labels& labels) {
  reg.set_counter("router.windows", s.windows, labels);
  reg.set_counter("router.offered", s.offered, labels);
  reg.set_counter("router.served", s.served, labels);
  reg.set_counter("router.router_shed", s.router_shed, labels);
  reg.set_counter("router.auth_failed", s.auth_failed, labels);
  reg.set_counter("router.expired", s.expired, labels);
  reg.set_counter("router.rollouts", s.rollouts, labels);
  reg.set_counter("router.promotions", s.promotions, labels);
  reg.set_counter("router.rollbacks", s.rollbacks, labels);
  reg.set_counter("router.reloads", s.reloads, labels);
  reg.set_counter("router.reload_failures", s.reload_failures, labels);
  reg.set_counter("router.scale_ups", s.scale_ups, labels);
  reg.set_counter("router.scale_downs", s.scale_downs, labels);
  reg.set_counter("router.provisions", s.provisions, labels);
  reg.set_counter("router.transfer_drops", s.transfer_drops, labels);
  // Gauge mirrors of the rollout outcomes for --require-gauge pins.
  reg.set_gauge("router.rollbacks", static_cast<double>(s.rollbacks), labels);
  reg.set_gauge("router.promotions", static_cast<double>(s.promotions), labels);
}

}  // namespace plinius::obs
