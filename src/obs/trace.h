// Simulated-time span tracer.
//
// Every cost model in the repo charges a sim::Clock; the tracer records
// *where* that simulated time went. A Span brackets a region of code and
// stores begin/end timestamps read from the clock — never wall time — plus a
// category (the cost-attribution axis: ecall, GCM, EPC paging, PM flush, …)
// and a handful of typed attributes (bytes moved, batch size, iteration).
// Completed spans land in a bounded ring buffer that exporters (obs/export.h)
// turn into Chrome trace-event JSON or a category cost-attribution rollup.
//
// Wiring: the tracer attaches to the clock (sim::Clock::set_tracer), so every
// component that already holds the clock — which is all of them; the clock is
// how a Platform threads its cost models together — can emit spans with zero
// constructor plumbing. `trace(clock, ...)` returns an inert span when no
// tracer is attached or tracing is disabled.
//
// Contracts:
//   * Zero cost when off. Spans only *read* the clock; they never advance
//     it, so enabling tracing cannot change simulated timings, and disabled
//     tracing is a null-pointer check per site — training/serve results are
//     bitwise identical either way (tests/obs_test.cpp asserts this).
//   * Deterministic. Simulated time is charged only by the orchestrating
//     thread (see common/parallel.h), so span order is a function of the
//     workload, not of PLINIUS_THREADS. The tracer is nonetheless
//     thread-safe: a mutex guards the ring and nesting stacks are
//     thread-local, so a span opened on a worker thread is merely unordered
//     relative to other threads, never a data race.
//   * Bounded. The ring keeps the newest `capacity` spans; older ones are
//     evicted (dropped() counts them). Span ids stay monotonic across
//     eviction, so parent links to evicted spans simply dangle and rollups
//     treat such children as roots.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"

namespace plinius::obs {

/// Cost-attribution category. One axis for the whole system: the rollup
/// report groups simulated self-time by this enum, which is how the paper's
/// per-phase breakdowns (Table Ia, serve stage splits) fall out of a query.
enum class Category : std::uint8_t {
  kEcall = 0,      // enclave boundary transitions (enter+return)
  kOcall,          // ocall exit+re-enter pairs
  kGcm,            // AES-GCM time (seal/open, in-enclave or native rate)
  kPlainCopy,      // enclave-DRAM memcpy (no boundary, no paging)
  kBoundaryCopy,   // MEE-throttled copies across the enclave boundary
  kEpcPaging,      // EPC page faults beyond the usable limit
  kCompute,        // training/inference MACs (GEMM et al.)
  kPmStore,        // PM store bandwidth
  kPmRead,         // PM read latency + bandwidth (incl. scrub traffic)
  kPmFlush,        // CLFLUSH/CLFLUSHOPT/CLWB write-backs
  kPmFence,        // SFENCE drains
  kRomulusTx,      // durable-transaction bracket (self = log/state overhead)
  kSsd,            // SSD/file-system time (checkpoints, sealed key)
  kMirrorSave,     // mirror_out bracket
  kMirrorRestore,  // mirror_in / mirror_in_snapshot bracket
  kTrainIter,      // one training iteration bracket
  kDataBatch,      // PM dataset batch sample bracket
  kScrub,          // scrub / recovery-ladder work
  kServeBatch,     // one served batch bracket (per-worker timeline)
  kServeQueue,     // admission-to-dispatch wait
  kServeDecrypt,   // batch GCM open stage
  kServeForward,   // batched forward stage
  kServeSeal,      // reply sealing stage
  kServeOther,     // reload + ecall + boundary copies within a batch
  kPipelineSeal,   // background-lane seal window (mirror async save)
  kPipelineStall,  // foreground waiting on an in-flight background seal
  kOther,
};

inline constexpr std::size_t kCategoryCount =
    static_cast<std::size_t>(Category::kOther) + 1;

[[nodiscard]] const char* to_string(Category c) noexcept;

/// One typed key/value attached to a span. Values are numeric (the hot-path
/// attributes are byte counts, page counts, batch sizes, iterations); keys
/// must be string literals (stored by pointer, never copied).
struct Attr {
  const char* key = nullptr;
  double value = 0;
};

/// A completed (or still-open) span in the ring.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  // 0 = root
  const char* name = "";
  Category category = Category::kOther;
  sim::Nanos begin_ns = 0;
  sim::Nanos end_ns = 0;
  std::uint32_t track = 0;  // exporter lane: 0 = orchestrator, 1+N = worker N
  std::uint32_t depth = 0;
  static constexpr std::size_t kMaxAttrs = 4;
  Attr attrs[kMaxAttrs]{};
  std::size_t num_attrs = 0;

  [[nodiscard]] sim::Nanos duration() const noexcept { return end_ns - begin_ns; }
};

class Tracer {
 public:
  /// `capacity` bounds the ring (spans kept); 0 means "effectively
  /// unbounded" is NOT offered — the default keeps the newest 1M spans.
  explicit Tracer(std::size_t capacity = 1u << 20);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool on) noexcept { enabled_ = on; }

  /// Opens a span at `now_ns` on the calling thread's nesting stack and
  /// returns its id. Pair with close(). Prefer the RAII Span below.
  std::uint64_t open(Category category, const char* name, sim::Nanos now_ns);
  /// Closes the innermost open span on this thread (must be `id`),
  /// stamping `now_ns` and committing the record to the ring.
  void close(std::uint64_t id, sim::Nanos now_ns,
             const Attr* attrs = nullptr, std::size_t num_attrs = 0);
  /// Discards the innermost open span on this thread if it is `id`; no-op
  /// otherwise. For abandoned brackets (e.g. a transaction wiped out by a
  /// simulated crash) on paths that must not throw.
  void cancel(std::uint64_t id) noexcept;

  /// Records an already-bounded span (explicit timestamps, optional explicit
  /// parent and track) without touching the nesting stack — used for
  /// per-worker serve timelines and for decomposing one clock advance into
  /// category shares. Returns the span id (usable as `parent`).
  /// With parent == 0, a track-0 span nests under the calling thread's
  /// innermost open span; a span on any other track stays a root (it lives
  /// off the foreground timeline).
  std::uint64_t complete(Category category, const char* name, sim::Nanos begin_ns,
                         sim::Nanos end_ns, std::uint64_t parent = 0,
                         std::uint32_t track = 0, const Attr* attrs = nullptr,
                         std::size_t num_attrs = 0);

  /// Snapshot of the ring, oldest first. Open spans are not included.
  [[nodiscard]] std::vector<SpanRecord> spans() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Spans evicted from the ring since construction/clear.
  [[nodiscard]] std::uint64_t dropped() const;
  /// Open spans discarded via cancel() since construction/clear.
  [[nodiscard]] std::uint64_t cancelled() const;
  /// Total spans ever committed (ring + dropped).
  [[nodiscard]] std::uint64_t total_recorded() const;

  /// Empties the ring and resets drop accounting (span ids keep growing).
  void clear();

 private:
  struct OpenSpan {
    SpanRecord rec;
  };
  struct ThreadStack;  // thread-local nesting stack, registered per thread
  ThreadStack& stack();
  void commit(SpanRecord&& rec);

  std::size_t capacity_;
  bool enabled_ = true;
  mutable std::mutex mu_;
  std::deque<SpanRecord> ring_;
  std::uint64_t next_id_ = 1;
  std::uint64_t dropped_ = 0;
  std::uint64_t cancelled_ = 0;
};

/// RAII span bound to a clock: timestamps are clock.now() at construction
/// and destruction. Inert (two pointer checks, no allocation) when the clock
/// has no tracer or tracing is disabled.
class Span {
 public:
  Span(sim::Clock& clock, Category category, const char* name) noexcept
      : clock_(&clock), tracer_(clock.tracer()) {
    if (tracer_ != nullptr && tracer_->enabled()) {
      id_ = tracer_->open(category, name, clock.now());
    } else {
      tracer_ = nullptr;
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a numeric attribute (kept until close; silently dropped past
  /// SpanRecord::kMaxAttrs or when tracing is off).
  void attr(const char* key, double value) noexcept {
    if (tracer_ == nullptr) return;
    if (num_attrs_ < SpanRecord::kMaxAttrs) attrs_[num_attrs_++] = {key, value};
  }

  ~Span() {
    if (tracer_ != nullptr) tracer_->close(id_, clock_->now(), attrs_, num_attrs_);
  }

 private:
  sim::Clock* clock_;
  Tracer* tracer_;  // null when inert
  std::uint64_t id_ = 0;
  Attr attrs_[SpanRecord::kMaxAttrs]{};
  std::size_t num_attrs_ = 0;
};

/// Emits a pre-bounded leaf span on `clock`'s tracer; no-op when tracing is
/// off. For charge sites that know their advance up front, and for splitting
/// one advance into category shares (e.g. GCM vs paging within a parallel
/// sealing pass).
inline void trace_complete(sim::Clock& clock, Category category, const char* name,
                           sim::Nanos begin_ns, sim::Nanos end_ns,
                           const Attr* attrs = nullptr, std::size_t num_attrs = 0) {
  Tracer* t = clock.tracer();
  if (t == nullptr || !t->enabled() || end_ns <= begin_ns) return;
  t->complete(category, name, begin_ns, end_ns, /*parent=*/0, /*track=*/0, attrs,
              num_attrs);
}

}  // namespace plinius::obs
