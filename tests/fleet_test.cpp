#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/backoff.h"
#include "common/error.h"
#include "ml/config.h"
#include "ml/synth_digits.h"
#include "obs/registry.h"
#include "plinius/distributed.h"
#include "plinius/fleet/fleet.h"

namespace plinius::fleet {
namespace {

ml::Dataset small_data(std::size_t rows = 256) {
  ml::SynthDigitsOptions opt;
  opt.train_count = rows;
  opt.test_count = 1;
  return ml::make_synth_digits(opt).train;
}

ml::ModelConfig small_config() { return ml::make_cnn_config(2, 4, 8); }

// ---------------------------------------------------------------- Backoff --

TEST(Backoff, DoublesAndClampsAtCapWithoutJitter) {
  BackoffPolicy p;
  p.initial_ns = 1.0e6;
  p.cap_ns = 8.0e6;
  p.jitter = 0.0;
  BackoffSchedule s(p, 1);
  EXPECT_DOUBLE_EQ(s.next(), 1.0e6);
  EXPECT_DOUBLE_EQ(s.next(), 2.0e6);
  EXPECT_DOUBLE_EQ(s.next(), 4.0e6);
  EXPECT_DOUBLE_EQ(s.next(), 8.0e6);
  EXPECT_DOUBLE_EQ(s.next(), 8.0e6);  // capped, stays put
  EXPECT_DOUBLE_EQ(s.next(), 8.0e6);
  EXPECT_EQ(s.attempts(), 6u);
  EXPECT_GE(s.times_capped(), 3u);
}

TEST(Backoff, JitterIsBoundedAndCapped) {
  BackoffPolicy p;
  p.initial_ns = 1.0e6;
  p.cap_ns = 16.0e6;
  p.jitter = 0.25;
  BackoffSchedule s(p, 99);
  double base = 1.0e6;
  for (int i = 0; i < 12; ++i) {
    const double d = s.next();
    EXPECT_LE(d, p.cap_ns);
    EXPECT_GE(d, base * (1.0 - p.jitter) - 1.0);
    base = std::min(base * 2.0, p.cap_ns);
  }
}

TEST(Backoff, DeterministicPerSeedDistinctAcrossSeeds) {
  BackoffPolicy p;  // defaults: jitter 0.1
  BackoffSchedule a(p, 7), b(p, 7), c(p, 8);
  bool any_differs = false;
  for (int i = 0; i < 8; ++i) {
    const double da = a.next();
    EXPECT_DOUBLE_EQ(da, b.next());  // same seed: bit-identical schedule
    any_differs |= da != c.next();
  }
  EXPECT_TRUE(any_differs);  // different seed: jitters apart (no lockstep)
}

// ------------------------------------------------------------------ Fleet --

TEST(Fleet, RejectsBadOptions) {
  FleetOptions opt;
  opt.workers = 0;
  EXPECT_THROW(ElasticTrainer(MachineProfile::emlsgx_pm(), 48u << 20,
                              small_config(), opt),
               Error);
  FleetOptions opt2;
  opt2.min_live_fraction = 1.5;
  EXPECT_THROW(ElasticTrainer(MachineProfile::emlsgx_pm(), 48u << 20,
                              small_config(), opt2),
               Error);
}

// The acceptance bar: kBarrier + zero preemption reproduces
// DistributedTrainer bitwise — same losses, same weights, same clock.
TEST(Fleet, BarrierNoPreemptionMatchesDistributedTrainerBitwise) {
  const auto data = small_data();
  const auto config = ml::make_cnn_config(2, 4, 16);

  ClusterOptions copt;
  copt.workers = 3;
  copt.sync_every = 4;
  DistributedTrainer dist(MachineProfile::emlsgx_pm(), 48u << 20, config, copt);
  dist.load_dataset(data);
  const float dist_loss = dist.train(12);

  FleetOptions fopt;
  fopt.workers = 3;
  fopt.sync_every = 4;
  fopt.policy = SyncPolicy::kBarrier;
  ElasticTrainer fleet(MachineProfile::emlsgx_pm(), 48u << 20, config, fopt);
  fleet.load_dataset(data);
  const float fleet_loss = fleet.train(12);

  EXPECT_EQ(fleet_loss, dist_loss);  // bitwise, not approximately
  EXPECT_EQ(fleet.sync_rounds(), dist.sync_rounds());
  EXPECT_DOUBLE_EQ(fleet.elapsed_ns(), dist.elapsed_ns());
  for (std::size_t w = 0; w < 3; ++w) {
    const auto& hist = dist.trainer(w).loss_history();
    const auto& mine = fleet.losses(w);
    ASSERT_EQ(mine.size(), hist.size()) << "worker " << w;
    for (std::size_t i = 0; i < hist.size(); ++i) {
      ASSERT_EQ(mine[i], hist[i]) << "worker " << w << " iteration " << i;
    }
    const std::size_t layers = dist.network(w).num_layers();
    for (std::size_t l = 0; l < layers; ++l) {
      const auto ref = dist.network(w).layer(l).parameters();
      const auto got = fleet.network(w).layer(l).parameters();
      ASSERT_EQ(ref.size(), got.size());
      for (std::size_t b = 0; b < ref.size(); ++b) {
        for (std::size_t i = 0; i < ref[b].values.size(); ++i) {
          ASSERT_EQ(got[b].values[i], ref[b].values[i])
              << "worker " << w << " layer " << l << " buffer " << b;
        }
      }
    }
  }
  EXPECT_TRUE(fleet.report().completed);
  EXPECT_EQ(fleet.report().kills, 0u);
  EXPECT_EQ(fleet.report().redone_iterations, 0u);
}

TEST(Fleet, KilledWorkerRejoinsFromMirrorWithoutRedoneWork) {
  FleetOptions opt;
  opt.workers = 3;
  opt.sync_every = 4;
  ElasticTrainer fleet(MachineProfile::emlsgx_pm(), 48u << 20, small_config(),
                       opt);
  fleet.load_dataset(small_data());
  bool killed = false;
  fleet.set_phase_hook([&](std::uint64_t round, RoundPhase phase) {
    if (round == 1 && phase == RoundPhase::kPreExchange && !killed) {
      killed = true;
      fleet.kill_worker(1);
    }
  });
  const float loss = fleet.train(16);
  EXPECT_TRUE(std::isfinite(loss));
  const FleetReport& rep = fleet.report();
  EXPECT_TRUE(rep.completed);
  EXPECT_EQ(rep.kills, 1u);
  EXPECT_EQ(rep.revives, 1u);
  ASSERT_EQ(rep.workers[1].interruptions.size(), 1u);
  const spot::InterruptionRecord& rec = rep.workers[1].interruptions[0];
  // Per-iteration mirroring: the mirror restore resumes exactly where the
  // kill struck, so nothing is redone.
  EXPECT_EQ(rec.tier, RecoveryTier::kMirror);
  EXPECT_EQ(rec.resume_iteration, rec.killed_at_iteration);
  EXPECT_EQ(rep.redone_iterations, 0u);
  EXPECT_EQ(rep.recoveries_by_tier[static_cast<std::size_t>(RecoveryTier::kMirror)],
            1u);
  for (std::size_t w = 0; w < 3; ++w) {
    EXPECT_EQ(fleet.network(w).iterations(), 16u);
  }
}

// Satellite sweep: kill 1..N-1 workers at every phase of an averaging round.
// Survivors' loss stays finite and bit-deterministic across reruns, every
// victim rejoins from its mirror, and quorum holds throughout (the dead are
// revived before the next round's quorum check under PreemptionModel::kNone).
TEST(Fleet, KillDuringAveragingPhaseSweep) {
  const auto data = small_data();
  const auto config = small_config();
  constexpr std::size_t kWorkers = 4;
  const RoundPhase phases[] = {RoundPhase::kPreExchange,
                               RoundPhase::kMidExchange,
                               RoundPhase::kPostAverage};
  for (const RoundPhase phase : phases) {
    for (std::size_t k = 1; k <= kWorkers - 1; ++k) {
      float last_loss = 0;
      for (int run = 0; run < 2; ++run) {
        FleetOptions opt;
        opt.workers = kWorkers;
        opt.sync_every = 4;
        ElasticTrainer fleet(MachineProfile::emlsgx_pm(), 48u << 20, config,
                             opt);
        fleet.load_dataset(data);
        bool killed = false;
        fleet.set_phase_hook([&](std::uint64_t round, RoundPhase at) {
          if (round == 1 && at == phase && !killed) {
            killed = true;
            for (std::size_t w = 1; w <= k; ++w) fleet.kill_worker(w);
          }
        });
        const float loss = fleet.train(12);
        ASSERT_TRUE(std::isfinite(loss))
            << to_string(phase) << " k=" << k << " run=" << run;
        const FleetReport& rep = fleet.report();
        EXPECT_TRUE(rep.completed);
        EXPECT_EQ(rep.kills, k);
        EXPECT_EQ(rep.revives, k);
        for (const RoundLog& log : rep.rounds) {
          EXPECT_TRUE(log.quorum_met) << "round " << log.round;
          EXPECT_GE(log.end_ns, log.start_ns);
        }
        for (std::size_t w = 0; w < kWorkers; ++w) {
          EXPECT_EQ(fleet.network(w).iterations(), 12u)
              << to_string(phase) << " k=" << k << " worker " << w;
        }
        if (run == 0) {
          last_loss = loss;
        } else {
          EXPECT_EQ(loss, last_loss)
              << to_string(phase) << " k=" << k << " is nondeterministic";
        }
      }
    }
  }
}

TEST(Fleet, QuorumLossSkipsRoundsAndChargesIdleTime) {
  FleetOptions opt;
  opt.workers = 3;
  opt.max_rounds = 10;
  opt.preemption.model = PreemptionModel::kSpotTrace;
  opt.preemption.max_bid = 0.0;  // outbid forever: every worker stays dead
  ElasticTrainer fleet(MachineProfile::emlsgx_pm(), 48u << 20, small_config(),
                       opt);
  fleet.load_dataset(small_data());
  const sim::Nanos before = fleet.elapsed_ns();
  const float loss = fleet.train(8);
  EXPECT_EQ(loss, 0.0f);  // nobody trained
  const FleetReport& rep = fleet.report();
  EXPECT_FALSE(rep.completed);
  EXPECT_EQ(rep.rounds_total, 10u);
  EXPECT_EQ(rep.rounds_skipped_quorum, 10u);
  EXPECT_EQ(rep.kills, 3u);
  EXPECT_EQ(rep.revives, 0u);
  EXPECT_EQ(rep.executed_iterations, 0u);
  for (const RoundLog& log : rep.rounds) EXPECT_FALSE(log.quorum_met);
  // Wall time passes while the fleet idles below quorum. The subtraction of
  // two large clock values loses a few ulps against the exact sum of the ten
  // idle charges, so allow a nanosecond of cancellation slack.
  EXPECT_GE(fleet.elapsed_ns() - before, 10 * opt.idle_round_ns - 1.0);
}

TEST(Fleet, BoundedStalenessStragglersCatchUpAndComplete) {
  FleetOptions opt;
  opt.workers = 3;
  opt.sync_every = 4;
  opt.policy = SyncPolicy::kBoundedStaleness;
  opt.staleness_bound = 1;
  opt.max_rounds = 400;
  opt.preemption.model = PreemptionModel::kChaos;
  opt.preemption.kill_probability = 0.15;
  opt.preemption.min_down_rounds = 3;
  opt.preemption.max_down_rounds = 3;
  ElasticTrainer fleet(MachineProfile::emlsgx_pm(), 48u << 20, small_config(),
                       opt);
  fleet.load_dataset(small_data());
  const float loss = fleet.train(40);
  EXPECT_TRUE(std::isfinite(loss));
  const FleetReport& rep = fleet.report();
  EXPECT_TRUE(rep.completed);
  EXPECT_GE(rep.kills, 1u);  // the seeded schedule does preempt someone
  for (std::size_t w = 0; w < 3; ++w) {
    EXPECT_EQ(fleet.network(w).iterations(), 40u) << "worker " << w;
  }
  // Somebody sat out rounds — dead, below quorum, or beyond the bound.
  std::uint64_t missed = 0;
  for (const WorkerReport& w : rep.workers) missed += w.rounds_missed;
  EXPECT_GE(missed, 1u);
  EXPECT_EQ(rep.rounds_total, rep.rounds.size());
}

TEST(Fleet, GossipPairsDeterministically) {
  const auto data = small_data();
  const auto config = small_config();
  float first = 0;
  for (int run = 0; run < 2; ++run) {
    FleetOptions opt;
    opt.workers = 4;
    opt.sync_every = 4;
    opt.policy = SyncPolicy::kGossip;
    ElasticTrainer fleet(MachineProfile::emlsgx_pm(), 48u << 20, config, opt);
    fleet.load_dataset(data);
    const float loss = fleet.train(16);
    ASSERT_TRUE(std::isfinite(loss));
    const FleetReport& rep = fleet.report();
    EXPECT_TRUE(rep.completed);
    // Four live workers pair completely: nobody sits out.
    for (const WorkerReport& w : rep.workers) {
      EXPECT_GT(w.rounds_participated, 0u);
      EXPECT_EQ(w.rounds_missed, 0u);
    }
    if (run == 0) {
      first = loss;
    } else {
      EXPECT_EQ(loss, first);  // same fleet_seed: same pairings, same model
    }
  }
}

TEST(Fleet, GossipOddWorkerSitsOut) {
  FleetOptions opt;
  opt.workers = 3;
  opt.sync_every = 4;
  opt.policy = SyncPolicy::kGossip;
  ElasticTrainer fleet(MachineProfile::emlsgx_pm(), 48u << 20, small_config(),
                       opt);
  fleet.load_dataset(small_data());
  (void)fleet.train(12);
  const FleetReport& rep = fleet.report();
  EXPECT_TRUE(rep.completed);
  std::uint64_t missed = 0;
  for (const WorkerReport& w : rep.workers) missed += w.rounds_missed;
  // Every averaged round leaves exactly one of the three out.
  EXPECT_EQ(missed, rep.sync_rounds);
}

// The PR's headline claim, as an assertion: under the same seeded preemption
// schedule, mirror-backed recovery redoes strictly less work than the
// non-resilient baseline.
TEST(Fleet, ResilientFleetRedoesLessWorkThanNonResilient) {
  const auto data = small_data();
  const auto config = small_config();
  auto run = [&](CheckpointBackend backend) {
    FleetOptions opt;
    opt.workers = 3;
    opt.sync_every = 4;
    opt.max_rounds = 500;
    opt.trainer.backend = backend;
    opt.preemption.model = PreemptionModel::kSpotTrace;
    opt.preemption.spike_probability = 0.12;
    ElasticTrainer fleet(MachineProfile::emlsgx_pm(), 48u << 20, config, opt);
    fleet.load_dataset(data);
    (void)fleet.train(24);
    return fleet.report();
  };
  const FleetReport resilient = run(CheckpointBackend::kPmMirror);
  const FleetReport baseline = run(CheckpointBackend::kNone);
  EXPECT_TRUE(resilient.completed);
  EXPECT_TRUE(baseline.completed);
  EXPECT_GE(baseline.kills, 1u);  // the schedule did preempt someone
  EXPECT_LT(resilient.redone_iterations, baseline.redone_iterations);
  // Per-iteration mirroring redoes nothing at all.
  EXPECT_EQ(resilient.redone_iterations, 0u);
  EXPECT_EQ(baseline.executed_iterations,
            3 * 24 + baseline.redone_iterations);
}

// Chaos kills that also damage the victim's PM push revivals past the
// mirror rung: the ladder bottoms out and the peer re-provision rung
// restores progress from a healthy worker.
TEST(Fleet, ChaosMediaDamageClimbsRecoveryLadderToPeer) {
  FleetOptions opt;
  opt.workers = 3;
  opt.sync_every = 4;
  opt.max_rounds = 300;
  opt.trainer.data_policy = CorruptRecordPolicy::kResample;
  opt.preemption.model = PreemptionModel::kChaos;
  opt.preemption.kill_probability = 0.3;
  opt.preemption.min_down_rounds = 1;
  opt.preemption.max_down_rounds = 2;
  opt.preemption.media_rates.bit_flips_per_mib = 64.0;
  ElasticTrainer fleet(MachineProfile::emlsgx_pm(), 48u << 20, small_config(),
                       opt);
  fleet.load_dataset(small_data());
  const float loss = fleet.train(20);
  EXPECT_TRUE(std::isfinite(loss));
  const FleetReport& rep = fleet.report();
  EXPECT_TRUE(rep.completed);
  EXPECT_GE(rep.kills, 1u);
  const auto tier = [&](RecoveryTier t) {
    return rep.recoveries_by_tier[static_cast<std::size_t>(t)];
  };
  // Bit-flipped arenas defeat the plain mirror restore: recoveries land on
  // the deeper rungs, and at least one pulled the model from a peer.
  EXPECT_GE(tier(RecoveryTier::kPeer), 1u);
  EXPECT_GE(fleet.stats().peer_provisions, 1u);
  for (std::size_t w = 0; w < 3; ++w) {
    EXPECT_EQ(fleet.network(w).iterations(), 20u) << "worker " << w;
  }
}

TEST(Fleet, PublishesCanonicalTelemetry) {
  FleetOptions opt;
  opt.workers = 2;
  opt.sync_every = 4;
  ElasticTrainer fleet(MachineProfile::emlsgx_pm(), 48u << 20, small_config(),
                       opt);
  fleet.load_dataset(small_data());
  bool killed = false;
  fleet.set_phase_hook([&](std::uint64_t round, RoundPhase phase) {
    if (round == 0 && phase == RoundPhase::kPostAverage && !killed) {
      killed = true;
      fleet.kill_worker(1);
    }
  });
  (void)fleet.train(8);

  obs::Registry reg;
  fleet.publish(reg);
  const FleetReport& rep = fleet.report();
  EXPECT_DOUBLE_EQ(reg.gauge("fleet.live_workers"),
                   static_cast<double>(rep.live_workers));
  EXPECT_EQ(reg.counter("fleet.kills"), rep.kills);
  EXPECT_EQ(reg.counter("fleet.revives"), rep.revives);
  EXPECT_EQ(reg.counter("fleet.redone_iterations"), rep.redone_iterations);
  EXPECT_EQ(reg.counter("fleet.executed_iterations"), rep.executed_iterations);
  EXPECT_EQ(
      reg.counter("fleet.recoveries", {{"tier", "mirror"}}),
      rep.recoveries_by_tier[static_cast<std::size_t>(RecoveryTier::kMirror)]);
  EXPECT_EQ(reg.counter("fleet.worker.kills", {{"worker", "1"}}),
            rep.workers[1].kills);
  // The per-round histogram carries one sample per round.
  EXPECT_EQ(reg.histogram("fleet.round_ns").count(), rep.rounds.size());
  // Canonical cluster gauges ride along for validate_obs --require-gauge.
  const std::string snap = reg.snapshot_json();
  EXPECT_NE(snap.find("cluster.peer_provisions"), std::string::npos);
  EXPECT_NE(snap.find("fleet.recovery_tier"), std::string::npos);
}

}  // namespace
}  // namespace plinius::fleet
