// Leakage observatory tests: recorder coalescing/bounds, analyzer metrics,
// bitwise equivalence of the oblivious kernel variants, and the headline
// acceptance property — baseline kernels produce input-distinguishable
// traces, oblivious kernels produce bitwise input-independent ones — plus
// the determinism contract (thread-count invariance, recorded-vs-unrecorded
// bitwise identity).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "ml/connected_layer.h"
#include "ml/conv_layer.h"
#include "ml/data.h"
#include "ml/im2col.h"
#include "ml/maxpool_layer.h"
#include "ml/network.h"
#include "ml/oblivious.h"
#include "ml/softmax_layer.h"
#include "obs/leakage.h"
#include "plinius/inference.h"
#include "plinius/platform.h"

namespace plinius {
namespace {

using ml::ObliviousOptions;
using ml::ScopedObliviousOptions;
using obs::LeakEvent;
using obs::LeakKind;
using obs::LeakTrace;

// ---------------------------------------------------------------- recorder --

TEST(LeakRecorder, CoalescesContiguousPageRunsPerSite) {
  obs::PageTraceRecorder rec;
  rec.page_range("a", 0, 1);
  rec.page_range("a", 1, 2);  // extends 0..2
  rec.page_range("a", 5, 1);  // gap: new run
  rec.page_range("b", 6, 1);  // different site: new run
  const LeakTrace t = rec.events();
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].value, 0u);
  EXPECT_EQ(t[0].count, 3u);
  EXPECT_EQ(t[1].value, 5u);
  EXPECT_STREQ(t[2].site, "b");
  EXPECT_EQ(rec.raw_page_events(), 5u);  // pre-coalescing page count
}

TEST(LeakRecorder, BranchRunsCoalesceByDirection) {
  obs::PageTraceRecorder rec;
  rec.branch("s", true);
  rec.branch("s", true);
  rec.branch("s", false);
  rec.branch("s", true);
  const LeakTrace t = rec.events();
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].value, 1u);
  EXPECT_EQ(t[0].count, 2u);
  EXPECT_EQ(t[1].value, 0u);
  EXPECT_EQ(t[2].count, 1u);
  EXPECT_EQ(rec.raw_branch_events(), 4u);
}

TEST(LeakRecorder, MarksNeverCoalesceAndTouchPagesRounds) {
  obs::PageTraceRecorder rec;
  rec.mark("m");
  rec.mark("m");
  obs::set_page_trace_recorder(&rec);
  obs::touch_pages("p", 4090, 10);  // straddles the page boundary -> 2 pages
  obs::touch_pages("p", 0, 0);      // len 0: no event
  obs::set_page_trace_recorder(nullptr);
  const LeakTrace t = rec.events();
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].kind, LeakKind::kMark);
  EXPECT_EQ(t[1].kind, LeakKind::kMark);
  EXPECT_EQ(t[2].value, 0u);
  EXPECT_EQ(t[2].count, 2u);
}

TEST(LeakRecorder, BoundedCapacityDropsNewestAndCounts) {
  obs::PageTraceRecorder rec(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) rec.mark("m");
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(LeakRecorder, ScopedRecorderInstallsAndRestores) {
  EXPECT_EQ(obs::page_trace_recorder(), nullptr);
  {
    obs::ScopedLeakRecorder outer;
    EXPECT_EQ(obs::page_trace_recorder(), &outer.recorder());
    {
      obs::ScopedLeakRecorder inner;
      EXPECT_EQ(obs::page_trace_recorder(), &inner.recorder());
    }
    EXPECT_EQ(obs::page_trace_recorder(), &outer.recorder());
  }
  EXPECT_EQ(obs::page_trace_recorder(), nullptr);
  // Hooks are no-ops (not crashes) with no recorder installed.
  obs::touch_pages("x", 0, 123);
  obs::branch_event("x", true);
  obs::leak_mark("x");
}

// ---------------------------------------------------------------- analyzer --

TEST(LeakAnalyzer, IdenticalTracesCarryNoInformation) {
  const LeakTrace t{{LeakKind::kPage, "a", 0, 3}, {LeakKind::kBranch, "b", 1, 7}};
  const std::vector<LeakTrace> traces(4, t);
  const obs::LeakageReport r = obs::analyze_traces(traces);
  EXPECT_EQ(r.traces, 4u);
  EXPECT_EQ(r.distinct, 1u);
  EXPECT_EQ(r.pairs, 6u);
  EXPECT_EQ(r.distinguishable_pairs, 0u);
  EXPECT_DOUBLE_EQ(r.score, 0.0);
  EXPECT_DOUBLE_EQ(r.mean_edit_distance, 0.0);
  EXPECT_DOUBLE_EQ(r.mean_position_entropy_bits, 0.0);
}

TEST(LeakAnalyzer, DistinctTracesAreFullyDistinguishable) {
  std::vector<LeakTrace> traces;
  for (std::uint32_t i = 0; i < 4; ++i) {
    traces.push_back({{LeakKind::kPage, "a", i, 1}, {LeakKind::kBranch, "b", i % 2, 3}});
  }
  const obs::LeakageReport r = obs::analyze_traces(traces);
  EXPECT_EQ(r.distinct, 4u);
  EXPECT_EQ(r.distinguishable_pairs, r.pairs);
  EXPECT_DOUBLE_EQ(r.score, 1.0);
  EXPECT_GT(r.mean_edit_distance, 0.0);
  EXPECT_GT(r.mean_position_entropy_bits, 0.0);
  EXPECT_LE(r.mean_position_entropy_bits, 2.0);  // log2(4) upper bound
}

TEST(LeakAnalyzer, FingerprintAndEqualityAreContentBased) {
  static const char site_a[] = "site";
  static const char site_b[] = "site";  // same content, different pointer
  const LeakTrace a{{LeakKind::kPage, site_a, 1, 2}};
  const LeakTrace b{{LeakKind::kPage, site_b, 1, 2}};
  EXPECT_TRUE(obs::traces_equal(a, b));
  EXPECT_EQ(obs::trace_fingerprint(a), obs::trace_fingerprint(b));
  const LeakTrace c{{LeakKind::kPage, site_a, 1, 3}};
  EXPECT_FALSE(obs::traces_equal(a, c));
  EXPECT_NE(obs::trace_fingerprint(a), obs::trace_fingerprint(c));
}

TEST(LeakAnalyzer, EditDistanceIsNormalizedAndSubsamples) {
  const LeakTrace a{{LeakKind::kBranch, "s", 1, 1}, {LeakKind::kBranch, "s", 0, 1}};
  EXPECT_DOUBLE_EQ(obs::trace_edit_distance(a, a), 0.0);
  const LeakTrace empty;
  EXPECT_DOUBLE_EQ(obs::trace_edit_distance(a, empty), 1.0);
  // Long traces go through subsampling without blowing up.
  LeakTrace big1, big2;
  for (std::uint32_t i = 0; i < 10'000; ++i) {
    big1.push_back({LeakKind::kPage, "p", i, 1});
    big2.push_back({LeakKind::kPage, "p", i + 1, 1});
  }
  const double d = obs::trace_edit_distance(big1, big2, /*max_symbols=*/256);
  EXPECT_GT(d, 0.0);
  EXPECT_LE(d, 1.0);
}

// ------------------------------------------------- oblivious kernel parity --

TEST(ObliviousKernels, ActivationBitwiseEqualToBaseline) {
  Rng rng(7);
  for (const ml::Activation act :
       {ml::Activation::kLeakyRelu, ml::Activation::kRelu}) {
    std::vector<float> base(512), obl;
    for (auto& v : base) v = rng.normal();
    base[0] = 0.0f;
    base[1] = -0.0f;
    obl = base;
    ml::activate(act, base.data(), base.size());
    ml::oblivious_activate(act, obl.data(), obl.size());
    EXPECT_EQ(std::memcmp(base.data(), obl.data(), base.size() * sizeof(float)), 0);

    std::vector<float> d1(512), d2;
    for (auto& v : d1) v = rng.normal();
    d2 = d1;
    ml::gradient(act, base.data(), d1.data(), d1.size());
    ml::oblivious_activation_gradient(act, obl.data(), d2.data(), d2.size());
    EXPECT_EQ(std::memcmp(d1.data(), d2.data(), d1.size() * sizeof(float)), 0);
  }
}

TEST(ObliviousKernels, MaxpoolForwardAndBackwardBitwiseEqual) {
  Rng rng(11);
  const ml::Shape in{3, 8, 8};
  const std::size_t batch = 2;
  std::vector<float> input(batch * in.size());
  for (auto& v : input) v = rng.normal();

  ml::MaxPoolLayer base(in, {2, 2});
  ml::MaxPoolLayer obl(in, {2, 2});
  base.prepare(batch);
  obl.prepare(batch);
  base.forward(input.data(), batch, true);
  {
    ObliviousOptions o;
    o.branchless_maxpool = true;
    ScopedObliviousOptions scope(o);
    obl.forward(input.data(), batch, true);
  }
  ASSERT_EQ(base.output().size(), obl.output().size());
  EXPECT_EQ(std::memcmp(base.output().data(), obl.output().data(),
                        base.output().size() * sizeof(float)),
            0);

  // argmax_ equality is observable through backward's scatter.
  std::fill(base.delta().begin(), base.delta().end(), 1.0f);
  std::fill(obl.delta().begin(), obl.delta().end(), 1.0f);
  std::vector<float> d1(batch * in.size(), 0.0f), d2(batch * in.size(), 0.0f);
  base.backward(input.data(), d1.data(), batch);
  obl.backward(input.data(), d2.data(), batch);
  EXPECT_EQ(std::memcmp(d1.data(), d2.data(), d1.size() * sizeof(float)), 0);
}

TEST(ObliviousKernels, FixedIm2colBitwiseEqualAcrossShapes) {
  Rng rng(13);
  for (const std::size_t ksize : {1u, 2u, 3u}) {
    for (const std::size_t stride : {1u, 2u}) {
      for (const std::size_t pad : {0u, 1u, 2u}) {
        const std::size_t c = 2, h = 7, w = 5;
        if (h + 2 * pad < ksize || w + 2 * pad < ksize) continue;
        std::vector<float> im(c * h * w);
        for (auto& v : im) v = rng.normal();
        const std::size_t out_h = ml::conv_out_dim(h, ksize, stride, pad);
        const std::size_t out_w = ml::conv_out_dim(w, ksize, stride, pad);
        const std::size_t n = c * ksize * ksize * out_h * out_w;
        std::vector<float> col_base(n, -1.0f), col_fixed(n, -2.0f);
        ml::im2col(im.data(), c, h, w, ksize, stride, pad, col_base.data());
        ml::im2col_fixed(im.data(), c, h, w, ksize, stride, pad, col_fixed.data());
        EXPECT_EQ(std::memcmp(col_base.data(), col_fixed.data(), n * sizeof(float)),
                  0)
            << "k=" << ksize << " s=" << stride << " p=" << pad;
      }
    }
  }
}

ml::Dataset make_dataset(std::size_t rows, std::size_t x_cols, std::size_t y_cols,
                         std::uint64_t seed) {
  ml::Dataset d;
  d.x = ml::Matrix(rows, x_cols);
  d.y = ml::Matrix(rows, y_cols);
  Rng rng(seed);
  for (auto& v : d.x.values) v = rng.normal();
  for (std::size_t r = 0; r < rows; ++r) d.y.row(r)[rng.below(y_cols)] = 1.0f;
  return d;
}

std::multimap<float, std::vector<float>> row_multiset(const ml::Dataset& d) {
  std::multimap<float, std::vector<float>> rows;
  for (std::size_t r = 0; r < d.size(); ++r) {
    std::vector<float> row(d.x.row(r), d.x.row(r) + d.x.cols);
    row.insert(row.end(), d.y.row(r), d.y.row(r) + d.y.cols);
    rows.emplace(row[0], std::move(row));
  }
  return rows;
}

TEST(ObliviousKernels, ObliviousShufflePermutesAndIsSeedDeterministic) {
  const ml::Dataset original = make_dataset(23, 6, 3, 99);  // non-power-of-two
  ml::Dataset a = original, b = original, c = original;
  ml::oblivious_shuffle_dataset(a, 1);
  ml::oblivious_shuffle_dataset(b, 1);
  ml::oblivious_shuffle_dataset(c, 2);

  // Same multiset of (x, y) rows — nothing lost to the padding rows.
  EXPECT_EQ(row_multiset(a), row_multiset(original));
  EXPECT_EQ(row_multiset(c), row_multiset(original));
  // Same seed -> same permutation; different seed -> different one.
  EXPECT_EQ(a.x.values, b.x.values);
  EXPECT_EQ(a.y.values, b.y.values);
  EXPECT_NE(a.x.values, c.x.values);
  // And it actually permutes.
  EXPECT_NE(a.x.values, original.x.values);
}

TEST(ObliviousKernels, ShuffleTraceLeaksSeedOnlyInBaseline) {
  const ml::Dataset original = make_dataset(16, 300, 3, 7);
  std::vector<LeakTrace> baseline, oblivious;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    baseline.push_back(obs::record_leak_trace([&] {
      ml::Dataset d = original;
      ml::shuffle_dataset(d, seed);
    }));
    oblivious.push_back(obs::record_leak_trace([&] {
      ml::Dataset d = original;
      ScopedObliviousOptions scope(ObliviousOptions::all());
      ml::shuffle_dataset(d, seed);
    }));
  }
  const obs::LeakageReport base_r = obs::analyze_traces(baseline);
  const obs::LeakageReport obl_r = obs::analyze_traces(oblivious);
  EXPECT_GE(base_r.distinct, 2u);
  EXPECT_GT(base_r.score, 0.5);
  EXPECT_EQ(obl_r.distinct, 1u);
  EXPECT_DOUBLE_EQ(obl_r.score, 0.0);
  EXPECT_DOUBLE_EQ(obl_r.mean_position_entropy_bits, 0.0);
  EXPECT_GT(obl_r.page_events, 0u);  // the trace is non-trivial, just constant
}

// ------------------------------------------------ network-level observatory --

ml::Network make_leak_net(std::uint64_t seed) {
  Rng rng(seed);
  ml::Network net(ml::Shape{1, 8, 8});
  ml::ConvConfig conv;
  conv.filters = 4;
  conv.ksize = 3;
  conv.stride = 1;
  conv.pad = 1;
  conv.batch_normalize = false;
  conv.activation = ml::Activation::kLeakyRelu;
  net.add(std::make_unique<ml::ConvLayer>(net.next_input_shape(), conv, rng));
  net.add(std::make_unique<ml::MaxPoolLayer>(net.next_input_shape(),
                                             ml::MaxPoolConfig{2, 2}));
  net.add(std::make_unique<ml::ConnectedLayer>(
      net.next_input_shape(), ml::ConnectedConfig{10, ml::Activation::kLinear}, rng));
  net.add(std::make_unique<ml::SoftmaxLayer>(net.next_input_shape()));
  return net;
}

std::vector<std::vector<float>> make_secret_inputs(std::size_t n, std::size_t len,
                                                   std::uint64_t seed) {
  std::vector<std::vector<float>> inputs(n, std::vector<float>(len));
  Rng rng(seed);
  for (auto& in : inputs) {
    for (auto& v : in) v = rng.normal();
  }
  return inputs;
}

TEST(LeakObservatory, BaselineForwardDistinguishesInputsObliviousDoesNot) {
  ml::Network net = make_leak_net(21);
  const auto inputs = make_secret_inputs(4, net.input_shape().size(), 5);

  std::vector<LeakTrace> baseline, oblivious;
  for (const auto& in : inputs) {
    baseline.push_back(
        obs::record_leak_trace([&] { net.forward(in.data(), 1, false); }));
    oblivious.push_back(obs::record_leak_trace([&] {
      ScopedObliviousOptions scope(ObliviousOptions::all());
      net.forward(in.data(), 1, false);
    }));
  }
  const obs::LeakageReport base_r = obs::analyze_traces(baseline);
  EXPECT_GE(base_r.distinct, 2u);
  EXPECT_GE(base_r.score, 0.5);
  EXPECT_GT(base_r.branch_events, 0u);

  const obs::LeakageReport obl_r = obs::analyze_traces(oblivious);
  EXPECT_EQ(obl_r.distinct, 1u);
  EXPECT_DOUBLE_EQ(obl_r.score, 0.0);
  EXPECT_DOUBLE_EQ(obl_r.mean_position_entropy_bits, 0.0);
  EXPECT_EQ(obl_r.branch_events, 0u);  // every secret-dependent branch removed
  EXPECT_GT(obl_r.page_events, 0u);
}

TEST(LeakObservatory, BaselineForwardDistinguishesWeightPerturbations) {
  const auto input = make_secret_inputs(1, 64, 17)[0];
  std::vector<LeakTrace> baseline, oblivious;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    ml::Network net = make_leak_net(seed);  // different weights per secret
    baseline.push_back(
        obs::record_leak_trace([&] { net.forward(input.data(), 1, false); }));
    oblivious.push_back(obs::record_leak_trace([&] {
      ScopedObliviousOptions scope(ObliviousOptions::all());
      net.forward(input.data(), 1, false);
    }));
  }
  EXPECT_GE(obs::analyze_traces(baseline).score, 0.5);
  EXPECT_DOUBLE_EQ(obs::analyze_traces(oblivious).score, 0.0);
}

TEST(LeakObservatory, ObliviousVariantsPreserveForwardBitwise) {
  ml::Network base = make_leak_net(33);
  ml::Network obl = make_leak_net(33);
  const auto input = make_secret_inputs(1, base.input_shape().size(), 3)[0];
  base.forward(input.data(), 1, false);
  {
    ScopedObliviousOptions scope(ObliviousOptions::all());
    obl.forward(input.data(), 1, false);
  }
  ASSERT_EQ(base.output().size(), obl.output().size());
  EXPECT_EQ(std::memcmp(base.output().data(), obl.output().data(),
                        base.output().size() * sizeof(float)),
            0);
}

std::vector<float> train_and_collect_weights(bool traced, std::uint64_t seed) {
  ml::Network net = make_leak_net(seed);
  const auto data = make_dataset(32, net.input_shape().size(), 10, seed + 1);
  obs::PageTraceRecorder rec;
  if (traced) obs::set_page_trace_recorder(&rec);
  for (int step = 0; step < 4; ++step) {
    net.train_batch(data.x.values.data(), data.y.values.data(), 8);
  }
  if (traced) obs::set_page_trace_recorder(nullptr);
  std::vector<float> weights;
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    for (const auto& p : net.layer(l).parameters()) {
      weights.insert(weights.end(), p.values.begin(), p.values.end());
    }
  }
  if (traced) EXPECT_GT(rec.size(), 0u);
  return weights;
}

TEST(LeakObservatory, RecordingNeverPerturbsTrainingResults) {
  const auto untraced = train_and_collect_weights(false, 55);
  const auto traced = train_and_collect_weights(true, 55);
  ASSERT_EQ(untraced.size(), traced.size());
  EXPECT_EQ(std::memcmp(untraced.data(), traced.data(),
                        untraced.size() * sizeof(float)),
            0);
}

LeakTrace record_thread_sweep_workload() {
  return obs::record_leak_trace([] {
    ml::Network net = make_leak_net(77);
    const auto data = make_dataset(32, net.input_shape().size(), 10, 78);
    for (int step = 0; step < 2; ++step) {
      net.train_batch(data.x.values.data(), data.y.values.data(), 8);
    }
    ml::Dataset d = data;
    ml::shuffle_dataset(d, 5);
    net.forward(d.x.values.data(), 4, false);
  });
}

TEST(LeakObservatory, TraceIdenticalAcrossThreadCounts) {
  const std::size_t original = par::max_threads();
  std::vector<LeakTrace> runs;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    par::set_max_threads(threads);
    runs.push_back(record_thread_sweep_workload());
  }
  par::set_max_threads(original);
  ASSERT_GT(runs.front().size(), 0u);
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_TRUE(obs::traces_equal(runs[i], runs.front())) << "threads run " << i;
  }
}

TEST(LeakObservatory, ServePathEmitsMarksAndEnclavePageEvents) {
  Platform platform(MachineProfile::sgx_emlpm(), 64u << 20);
  ml::Network net = make_leak_net(91);
  const Bytes key(16, 0);
  crypto::AesGcm gcm(key);
  InferenceService service(platform, net, gcm);
  const auto input = make_secret_inputs(1, net.input_shape().size(), 9)[0];

  const LeakTrace t = obs::record_leak_trace([&] {
    (void)service.classify(std::span<const float>(input.data(), input.size()));
  });
  bool saw_request = false, saw_enclave_pages = false;
  for (const LeakEvent& ev : t) {
    if (ev.kind == LeakKind::kMark && std::strcmp(ev.site, "serve.request") == 0) {
      saw_request = true;
    }
    if (ev.kind == LeakKind::kPage && std::strcmp(ev.site, "sgx.touch") == 0) {
      saw_enclave_pages = true;
    }
  }
  EXPECT_TRUE(saw_request);
  EXPECT_TRUE(saw_enclave_pages);
}

}  // namespace
}  // namespace plinius
