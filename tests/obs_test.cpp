// Observability subsystem tests: tracer nesting/determinism, bounded ring,
// zero-cost-when-disabled bitwise identity of trainer+serve timings,
// registry series semantics, and the exporters (Chrome trace JSON, category
// rollup, subtree attribution).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/parallel.h"
#include "ml/config.h"
#include "ml/synth_digits.h"
#include "obs/export.h"
#include "obs/registry.h"
#include "obs/stats_bridge.h"
#include "obs/trace.h"
#include "plinius/platform.h"
#include "plinius/trainer.h"
#include "serve/loadgen.h"
#include "serve/server.h"

namespace plinius {
namespace {

// ---------------------------------------------------------------- tracer --

TEST(Tracer, NestingParentDepthAndAttrs) {
  obs::Tracer t;
  const std::uint64_t a = t.open(obs::Category::kTrainIter, "outer", 100);
  const std::uint64_t b = t.open(obs::Category::kGcm, "inner", 150);
  t.close(b, 180);
  const obs::Attr attr{"bytes", 4096};
  t.close(a, 200, &attr, 1);

  const auto spans = t.spans();
  ASSERT_EQ(spans.size(), 2u);
  // Ring order is completion order: inner closes first.
  EXPECT_STREQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].parent, a);
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_DOUBLE_EQ(spans[0].begin_ns, 150);
  EXPECT_DOUBLE_EQ(spans[0].end_ns, 180);
  EXPECT_STREQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_EQ(spans[1].depth, 0u);
  ASSERT_EQ(spans[1].num_attrs, 1u);
  EXPECT_STREQ(spans[1].attrs[0].key, "bytes");
  EXPECT_DOUBLE_EQ(spans[1].attrs[0].value, 4096);
}

TEST(Tracer, CompleteNestsUnderInnermostOpenSpan) {
  obs::Tracer t;
  const std::uint64_t a = t.open(obs::Category::kMirrorSave, "save", 0);
  const std::uint64_t leaf =
      t.complete(obs::Category::kGcm, "seal.gcm", 10, 20);
  t.close(a, 30);

  const auto spans = t.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].id, leaf);
  EXPECT_EQ(spans[0].parent, a);
  // An explicit parent wins over the open stack.
  const std::uint64_t c = t.open(obs::Category::kOther, "open", 40);
  const std::uint64_t leaf2 =
      t.complete(obs::Category::kGcm, "explicit", 41, 42, /*parent=*/a);
  t.close(c, 50);
  for (const auto& s : t.spans()) {
    if (s.id == leaf2) EXPECT_EQ(s.parent, a);
  }
}

TEST(Tracer, RaiiSpanReadsClockAndNeverAdvancesIt) {
  sim::Clock clock;
  obs::Tracer t;
  clock.set_tracer(&t);
  clock.advance(100);
  {
    obs::Span s(clock, obs::Category::kCompute, "work");
    clock.advance(50);
    s.attr("macs", 1e6);
  }
  EXPECT_DOUBLE_EQ(clock.now(), 150);  // spans only observe the clock
  const auto spans = t.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_DOUBLE_EQ(spans[0].begin_ns, 100);
  EXPECT_DOUBLE_EQ(spans[0].end_ns, 150);
  clock.set_tracer(nullptr);
}

TEST(Tracer, DisabledTracerAndDetachedClockRecordNothing) {
  sim::Clock clock;
  obs::Tracer t;
  clock.set_tracer(&t);
  t.set_enabled(false);
  {
    obs::Span s(clock, obs::Category::kCompute, "off");
    clock.advance(10);
  }
  obs::trace_complete(clock, obs::Category::kGcm, "off2", 0, 5);
  EXPECT_EQ(t.size(), 0u);
  clock.set_tracer(nullptr);
  t.set_enabled(true);
  {
    obs::Span s(clock, obs::Category::kCompute, "no-tracer");
    clock.advance(10);
  }
  EXPECT_EQ(t.size(), 0u);
}

TEST(Tracer, BoundedRingEvictsOldestAndCountsDrops) {
  obs::Tracer t(/*capacity=*/8);
  for (int i = 0; i < 20; ++i) {
    t.complete(obs::Category::kOther, "leaf", i, i + 1);
  }
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.dropped(), 12u);
  EXPECT_EQ(t.total_recorded(), 20u);
  const auto spans = t.spans();
  // Newest 8 survive, oldest first; ids keep growing across eviction.
  ASSERT_EQ(spans.size(), 8u);
  EXPECT_DOUBLE_EQ(spans.front().begin_ns, 12);
  EXPECT_DOUBLE_EQ(spans.back().begin_ns, 19);
  EXPECT_LT(spans.front().id, spans.back().id);

  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, CancelDiscardsInnermostOpenSpan) {
  obs::Tracer t;
  const std::uint64_t a = t.open(obs::Category::kRomulusTx, "tx", 0);
  const std::uint64_t b = t.open(obs::Category::kGcm, "inner", 1);
  t.cancel(b);  // crash path: discard without committing
  t.close(a, 10);
  const auto spans = t.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "tx");
  EXPECT_EQ(t.cancelled(), 1u);
  t.clear();
  EXPECT_EQ(t.cancelled(), 0u);
}

TEST(Tracer, RingAccountingPublishesAsGauges) {
  obs::Tracer t(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    t.complete(obs::Category::kOther, "leaf", i, i + 1);
  }
  const std::uint64_t open = t.open(obs::Category::kGcm, "doomed", 10);
  t.cancel(open);

  obs::Registry reg;
  obs::publish(reg, t, {{"platform", "test"}});
  EXPECT_DOUBLE_EQ(reg.gauge("obs.trace.recorded", {{"platform", "test"}}), 10.0);
  EXPECT_DOUBLE_EQ(reg.gauge("obs.trace.evicted", {{"platform", "test"}}), 6.0);
  EXPECT_DOUBLE_EQ(reg.gauge("obs.trace.cancelled", {{"platform", "test"}}), 1.0);
}

// ------------------------------------------------------------- workloads --

struct WorkloadResult {
  double final_clock_ns = 0;
  float accuracy = 0;
  double serve_goodput = 0;
  double serve_p99_ns = 0;
  std::uint64_t spans = 0;
  std::vector<obs::SpanRecord> trace;
};

/// Short train + serve run; `tracer` null means tracing detached entirely.
WorkloadResult run_workload(obs::Tracer* tracer) {
  const MachineProfile profile = MachineProfile::sgx_emlpm();
  Platform platform(profile, 64u << 20);
  platform.enclave().set_tcs_count(4);
  if (tracer != nullptr) platform.clock().set_tracer(tracer);

  ml::SynthDigitsOptions dopt;
  dopt.train_count = 256;
  dopt.test_count = 64;
  const auto digits = ml::make_synth_digits(dopt);
  Trainer trainer(platform, ml::make_cnn_config(1, 2, 16), TrainerOptions{});
  trainer.load_dataset(digits.train);

  WorkloadResult r;
  r.accuracy = trainer.train(6);

  crypto::AesGcm gcm(trainer.data_key());
  serve::LoadGenOptions lg;
  lg.rate_qps = 2.0e4;
  lg.count = 32;
  lg.start_ns = 0;
  lg.seed = 7;
  crypto::IvSequence client_iv(0xC11E27);
  const auto reqs = serve::poisson_workload(digits.test, gcm, client_iv, lg);
  serve::ServerOptions opt;
  opt.workers = 2;
  opt.batch = {.max_batch = 4, .max_wait_ns = 20'000};
  opt.admission = {.max_queue = 64, .deadline_aware = false};
  serve::InferenceServer server(platform, trainer.network(), gcm, opt,
                                &trainer.mirror(), nullptr);
  const auto done = server.run(reqs);
  const serve::SloReport rep = serve::make_slo_report(reqs, done);

  r.final_clock_ns = platform.clock().now();
  r.serve_goodput = rep.goodput_qps;
  r.serve_p99_ns = rep.p99_ns;
  if (tracer != nullptr) {
    r.spans = tracer->total_recorded();
    r.trace = tracer->spans();
    platform.clock().set_tracer(nullptr);
  }
  return r;
}

// Tracing off (or detached) must leave every simulated result bitwise
// identical to a traced run: spans read the clock, never advance it.
TEST(TracerContract, DisabledModeIsBitwiseIdentical) {
  obs::Tracer tracer;
  const WorkloadResult traced = run_workload(&tracer);
  const WorkloadResult untraced = run_workload(nullptr);

  EXPECT_GT(traced.spans, 0u);
  // Bitwise, not approximate: same doubles out of the simulation.
  EXPECT_EQ(traced.final_clock_ns, untraced.final_clock_ns);
  EXPECT_EQ(traced.accuracy, untraced.accuracy);
  EXPECT_EQ(traced.serve_goodput, untraced.serve_goodput);
  EXPECT_EQ(traced.serve_p99_ns, untraced.serve_p99_ns);

  // A tracer that is attached but disabled must also record nothing.
  obs::Tracer off;
  off.set_enabled(false);
  const WorkloadResult disabled = run_workload(&off);
  EXPECT_EQ(off.total_recorded(), 0u);
  EXPECT_EQ(disabled.final_clock_ns, untraced.final_clock_ns);
}

// Simulated time is charged only by the orchestrating thread, so the span
// stream (names, categories, timestamps, nesting) is a pure function of the
// workload — identical at any worker-pool size.
TEST(TracerContract, SpanStreamDeterministicAcrossThreadCounts) {
  const std::size_t original = par::max_threads();
  std::vector<WorkloadResult> runs;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    par::set_max_threads(threads);
    obs::Tracer tracer;
    runs.push_back(run_workload(&tracer));
  }
  par::set_max_threads(original);

  const WorkloadResult& base = runs.front();
  ASSERT_GT(base.trace.size(), 0u);
  for (std::size_t i = 1; i < runs.size(); ++i) {
    const WorkloadResult& r = runs[i];
    EXPECT_EQ(r.final_clock_ns, base.final_clock_ns) << "threads run " << i;
    ASSERT_EQ(r.trace.size(), base.trace.size()) << "threads run " << i;
    for (std::size_t j = 0; j < base.trace.size(); ++j) {
      const obs::SpanRecord& a = base.trace[j];
      const obs::SpanRecord& b = r.trace[j];
      ASSERT_STREQ(a.name, b.name) << "span " << j;
      ASSERT_EQ(a.category, b.category) << "span " << j;
      ASSERT_EQ(a.id, b.id) << "span " << j;
      ASSERT_EQ(a.parent, b.parent) << "span " << j;
      ASSERT_EQ(a.begin_ns, b.begin_ns) << "span " << j;
      ASSERT_EQ(a.end_ns, b.end_ns) << "span " << j;
      ASSERT_EQ(a.track, b.track) << "span " << j;
    }
  }
}

// The mirror-save subtree must decompose into GCM + paging + PM time via
// the generic attribution query — the mechanism behind Table Ia.
TEST(TracerContract, MirrorSaveSubtreeAttributesEncryptionTime) {
  obs::Tracer tracer;
  const WorkloadResult r = run_workload(&tracer);
  ASSERT_GT(r.trace.size(), 0u);
  const obs::CostReport save = obs::attribute_under(r.trace, "mirror.save");
  EXPECT_GT(save.spans, 0u);
  EXPECT_GT(save.total_ns, 0.0);
  EXPECT_GT(save.ns(obs::Category::kGcm), 0.0);
  EXPECT_GT(save.ns(obs::Category::kPmStore) + save.ns(obs::Category::kPmFlush),
            0.0);
  const double enc =
      save.share_of({obs::Category::kGcm, obs::Category::kEpcPaging});
  EXPECT_GT(enc, 0.0);
  EXPECT_LE(enc, 1.0);
}

// ------------------------------------------------------------- registry --

TEST(Registry, SeriesIdentityIsNamePlusSortedLabels) {
  obs::Registry reg;
  reg.set_counter("ecalls", 3, {{"platform", "a"}});
  reg.add_counter("ecalls", 2, {{"platform", "a"}});
  reg.set_counter("ecalls", 7, {{"platform", "b"}});
  EXPECT_EQ(reg.counter("ecalls", {{"platform", "a"}}), 5u);
  EXPECT_EQ(reg.counter("ecalls", {{"platform", "b"}}), 7u);
  EXPECT_EQ(reg.counter("ecalls"), 0u);  // unlabelled series is distinct

  // Label order must not matter.
  reg.set_gauge("sps", 1.5, {{"x", "1"}, {"y", "2"}});
  EXPECT_DOUBLE_EQ(reg.gauge("sps", {{"y", "2"}, {"x", "1"}}), 1.5);

  reg.record("lat", 100, {{"w", "0"}});
  reg.record("lat", 300, {{"w", "0"}});
  LatencyHistogram other;
  other.record(200);
  reg.merge_histogram("lat", other, {{"w", "0"}});
  EXPECT_EQ(reg.histogram("lat", {{"w", "0"}}).count(), 3u);
  // Two counter series + one gauge + one histogram; const lookups of
  // absent series must not create them.
  EXPECT_EQ(reg.series_count(), 4u);
  reg.clear();
  EXPECT_EQ(reg.series_count(), 0u);
}

TEST(Registry, SnapshotJsonContainsAllSeries) {
  obs::Registry reg;
  reg.set_counter("pm.stores", 42, {{"platform", "sgx-emlPM"}});
  reg.set_gauge("fig6.sps", 1234.5);
  reg.record("serve.latency", 1000);
  const std::string json = reg.snapshot_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"pm.stores\""), std::string::npos);
  EXPECT_NE(json.find("\"sgx-emlPM\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(Registry, StatsBridgePublishesCanonicalNames) {
  const MachineProfile profile = MachineProfile::sgx_emlpm();
  Platform platform(profile, 16u << 20);
  const sgx::EnclaveBuffer buf(platform.enclave(), 1 << 20);
  Bytes data(4096, 0xAB);
  platform.enclave().copy_into_enclave(data.size());
  platform.enclave().charge_ecall();

  obs::Registry reg;
  obs::publish(reg, platform.enclave().stats(), {{"platform", profile.name}});
  EXPECT_EQ(reg.counter("enclave.ecalls", {{"platform", profile.name}}), 1u);
  EXPECT_GE(reg.counter("enclave.bytes_copied_in", {{"platform", profile.name}}),
            data.size());
}

// ------------------------------------------------------------- exporters --

TEST(Export, RollupUsesSelfTimeNotInclusiveTime) {
  obs::Tracer t;
  const std::uint64_t p = t.open(obs::Category::kMirrorSave, "save", 0);
  t.complete(obs::Category::kGcm, "gcm", 10, 60);
  t.complete(obs::Category::kPmStore, "store", 60, 80);
  t.close(p, 100);

  const obs::CostReport rep = obs::rollup(t);
  EXPECT_DOUBLE_EQ(rep.ns(obs::Category::kGcm), 50);
  EXPECT_DOUBLE_EQ(rep.ns(obs::Category::kPmStore), 20);
  // Parent self = 100 - (50 + 20): children subtract exactly once.
  EXPECT_DOUBLE_EQ(rep.ns(obs::Category::kMirrorSave), 30);
  EXPECT_DOUBLE_EQ(rep.total_ns, 100);
  EXPECT_DOUBLE_EQ(
      rep.share_of({obs::Category::kGcm, obs::Category::kPmStore}), 0.7);
}

TEST(Export, AttributeUnderSelectsOnlyNamedSubtrees) {
  obs::Tracer t;
  const std::uint64_t a = t.open(obs::Category::kMirrorSave, "mirror.save", 0);
  t.complete(obs::Category::kGcm, "gcm", 0, 40);
  t.close(a, 50);
  const std::uint64_t b = t.open(obs::Category::kTrainIter, "train.iteration", 50);
  t.complete(obs::Category::kGcm, "gcm", 50, 60);
  t.close(b, 100);

  const obs::CostReport save = obs::attribute_under(t, "mirror.save");
  EXPECT_DOUBLE_EQ(save.total_ns, 50);
  EXPECT_DOUBLE_EQ(save.ns(obs::Category::kGcm), 40);
  EXPECT_DOUBLE_EQ(save.ns(obs::Category::kTrainIter), 0);
  const obs::CostReport none = obs::attribute_under(t, "no.such.root");
  EXPECT_DOUBLE_EQ(none.total_ns, 0);
  EXPECT_EQ(none.spans, 0u);
}

TEST(Export, ChromeTraceIsWellFormedCompleteEvents) {
  obs::Tracer t;
  const std::uint64_t p = t.open(obs::Category::kServeBatch, "serve.batch", 1000);
  const obs::Attr attr{"batch", 8};
  t.close(p, 3000, &attr, 1);
  t.complete(obs::Category::kServeQueue, "serve.queue", 0, 500, 0, /*track=*/2);

  const std::string json = obs::to_chrome_trace(t);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"serve.batch\""), std::string::npos);
  // ts/dur are microseconds of simulated time; track becomes tid.
  EXPECT_NE(json.find("\"ts\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"batch\""), std::string::npos);
  // Balanced braces/brackets as a cheap structural check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

}  // namespace
}  // namespace plinius
