#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <thread>

#include "common/error.h"
#include "crypto/envelope.h"
#include "ml/config.h"
#include "ml/synth_digits.h"
#include "plinius/inference.h"
#include "plinius/platform.h"
#include "plinius/tensor_mirror.h"
#include "plinius/trainer.h"
#include "romulus/romulus.h"

namespace plinius {
namespace {

crypto::AesGcm test_gcm() {
  Bytes key(16);
  Rng(55).fill(key.data(), key.size());
  return crypto::AesGcm(key);
}

class TensorMirrorTest : public ::testing::Test {
 protected:
  TensorMirrorTest()
      : platform_(MachineProfile::sgx_emlpm(), 16 * 1024 * 1024),
        rom_(platform_.pm(), 0, 7 * 1024 * 1024,
             romulus::PwbPolicy::clflushopt_sfence(), true),
        mirror_(rom_, platform_.enclave(), test_gcm()) {
    weights_.resize(1000);
    biases_.resize(64);
    bn_stats_.resize(128);
    Rng rng(1);
    for (auto& v : weights_) v = rng.normal();
    for (auto& v : biases_) v = rng.normal();
    for (auto& v : bn_stats_) v = rng.normal();
  }

  std::vector<NamedTensor> tensor_set() {
    return {{"conv1/weights", weights_},
            {"conv1/biases", biases_},
            {"conv1/bn", bn_stats_}};
  }

  Platform platform_;
  romulus::Romulus rom_;
  TensorMirror mirror_;
  std::vector<float> weights_, biases_, bn_stats_;
};

TEST_F(TensorMirrorTest, AllocRoundTrip) {
  EXPECT_FALSE(mirror_.exists());
  auto tensors = tensor_set();
  mirror_.alloc(tensors);
  EXPECT_TRUE(mirror_.exists());
  EXPECT_EQ(mirror_.tensor_count(), 3u);
  EXPECT_EQ(mirror_.version(), 0u);
  EXPECT_THROW(mirror_.alloc(tensors), PmError);

  mirror_.mirror_out(tensors, 7);
  EXPECT_EQ(mirror_.version(), 7u);

  // Scramble the in-enclave tensors, restore, and compare.
  const auto saved_w = weights_;
  const auto saved_b = biases_;
  Rng rng(9);
  for (auto& v : weights_) v = rng.normal();
  for (auto& v : biases_) v = rng.normal();
  auto restored = tensor_set();
  EXPECT_EQ(mirror_.mirror_in(restored), 7u);
  EXPECT_EQ(weights_, saved_w);
  EXPECT_EQ(biases_, saved_b);
}

TEST_F(TensorMirrorTest, OrderIndependentMatchByName) {
  auto tensors = tensor_set();
  mirror_.alloc(tensors);
  mirror_.mirror_out(tensors, 1);

  const auto saved = bn_stats_;
  std::fill(bn_stats_.begin(), bn_stats_.end(), 0.0f);
  std::vector<NamedTensor> reordered = {{"conv1/bn", bn_stats_},
                                        {"conv1/biases", biases_},
                                        {"conv1/weights", weights_}};
  EXPECT_EQ(mirror_.mirror_in(reordered), 1u);
  EXPECT_EQ(bn_stats_, saved);
}

TEST_F(TensorMirrorTest, RejectsBadSets) {
  auto tensors = tensor_set();
  mirror_.alloc(tensors);
  mirror_.mirror_out(tensors, 0);

  std::vector<NamedTensor> unknown = {{"conv1/weights", weights_},
                                      {"conv1/biases", biases_},
                                      {"wrong/name", bn_stats_}};
  EXPECT_THROW(mirror_.mirror_out(unknown, 1), MlError);
  // The failed mirror_out aborted mid-transaction: the version bump and the
  // partially sealed tensors must have been rolled back, not left torn.
  EXPECT_EQ(mirror_.version(), 0u);
  EXPECT_THROW((void)mirror_.mirror_in(unknown), MlError);

  std::vector<float> wrong_size(10);
  std::vector<NamedTensor> resized = {{"conv1/weights", wrong_size},
                                      {"conv1/biases", biases_},
                                      {"conv1/bn", bn_stats_}};
  EXPECT_THROW(mirror_.mirror_out(resized, 1), MlError);

  std::vector<NamedTensor> too_few = {{"conv1/weights", weights_}};
  EXPECT_THROW(mirror_.mirror_out(too_few, 1), MlError);
}

TEST_F(TensorMirrorTest, RejectsDuplicateAndLongNames) {
  std::vector<NamedTensor> dup = {{"t", weights_}, {"t", biases_}};
  EXPECT_THROW(mirror_.alloc(dup), MlError);
  std::vector<NamedTensor> long_name = {
      {std::string(60, 'x'), weights_}};
  EXPECT_THROW(mirror_.alloc(long_name), MlError);
  std::vector<NamedTensor> empty;
  EXPECT_THROW(mirror_.alloc(empty), Error);
}

TEST_F(TensorMirrorTest, SurvivesCrash) {
  auto tensors = tensor_set();
  mirror_.alloc(tensors);
  mirror_.mirror_out(tensors, 3);
  const auto saved = weights_;

  platform_.pm().crash();
  romulus::Romulus recovered(platform_.pm(), 0, 7 * 1024 * 1024,
                             romulus::PwbPolicy::clflushopt_sfence());
  TensorMirror mirror2(recovered, platform_.enclave(), test_gcm());
  std::fill(weights_.begin(), weights_.end(), 0.0f);
  auto restored = tensor_set();
  EXPECT_EQ(mirror2.mirror_in(restored), 3u);
  EXPECT_EQ(weights_, saved);
}

TEST_F(TensorMirrorTest, TamperDetected) {
  auto tensors = tensor_set();
  mirror_.alloc(tensors);
  mirror_.mirror_out(tensors, 1);
  for (std::size_t off = 256; off < 64 * 1024; off += 256) {
    rom_.main_base()[off] ^= 0x01;
  }
  auto restored = tensor_set();
  EXPECT_THROW((void)mirror_.mirror_in(restored), Error);
}

// --- secure inference -----------------------------------------------------------

class InferenceTest : public ::testing::Test {
 protected:
  InferenceTest() : platform_(MachineProfile::emlsgx_pm(), 64 * 1024 * 1024) {
    ml::SynthDigitsOptions opt;
    opt.train_count = 2048;
    opt.test_count = 512;
    digits_ = ml::make_synth_digits(opt);
  }

  Platform platform_;
  ml::SynthDigits digits_;
};

TEST_F(InferenceTest, SealedQueryRoundTrip) {
  Trainer trainer(platform_, ml::make_cnn_config(3, 8, 64), TrainerOptions{});
  trainer.load_dataset(digits_.train);
  (void)trainer.train(80);

  const crypto::AesGcm gcm{trainer.data_key()};
  InferenceService service(platform_, trainer.network(), gcm);
  EXPECT_EQ(service.input_size(), ml::kDigitPixels);

  // Client side: seal a test image, query, open the sealed prediction.
  crypto::IvSequence client_iv(77);
  int correct = 0;
  const int n = 64;
  for (int i = 0; i < n; ++i) {
    const float* img = digits_.test.x.row(i);
    const auto sealed_query = crypto::seal(
        gcm, client_iv,
        ByteSpan(reinterpret_cast<const std::uint8_t*>(img),
                 ml::kDigitPixels * sizeof(float)));
    const Bytes sealed_reply = service.classify_sealed(sealed_query);
    const std::size_t pred = InferenceService::open_prediction(gcm, sealed_reply);

    const float* truth = digits_.test.y.row(i);
    std::size_t label = 0;
    for (std::size_t c = 1; c < ml::kDigitClasses; ++c) {
      if (truth[c] > truth[label]) label = c;
    }
    correct += pred == label;
  }
  EXPECT_GT(correct, n * 3 / 4);  // trained model classifies well
  EXPECT_EQ(service.stats().queries, static_cast<std::uint64_t>(n));
  EXPECT_GT(service.stats().total_ns, 0.0);
}

TEST_F(InferenceTest, TamperedQueryRejected) {
  Trainer trainer(platform_, ml::make_cnn_config(2, 4, 32), TrainerOptions{});
  trainer.load_dataset(digits_.train);
  (void)trainer.train(2);

  const crypto::AesGcm gcm{trainer.data_key()};
  InferenceService service(platform_, trainer.network(), gcm);
  crypto::IvSequence iv(1);
  Bytes query = crypto::seal(
      gcm, iv,
      ByteSpan(reinterpret_cast<const std::uint8_t*>(digits_.test.x.row(0)),
               ml::kDigitPixels * sizeof(float)));
  query[40] ^= 0xFF;
  EXPECT_THROW((void)service.classify_sealed(query), CryptoError);
  EXPECT_THROW((void)service.classify_sealed(ByteSpan(query.data(), 10)), CryptoError);
}

TEST_F(InferenceTest, WrongKeyClientRejected) {
  Trainer trainer(platform_, ml::make_cnn_config(2, 4, 32), TrainerOptions{});
  trainer.load_dataset(digits_.train);
  (void)trainer.train(2);

  const crypto::AesGcm gcm{trainer.data_key()};
  InferenceService service(platform_, trainer.network(), gcm);
  Bytes rogue_key(16, 0x66);
  const crypto::AesGcm rogue(rogue_key);
  crypto::IvSequence iv(1);
  const Bytes query = crypto::seal(
      rogue, iv,
      ByteSpan(reinterpret_cast<const std::uint8_t*>(digits_.test.x.row(0)),
               ml::kDigitPixels * sizeof(float)));
  EXPECT_THROW((void)service.classify_sealed(query), CryptoError);
}

TEST_F(InferenceTest, WrongSizeQueryNamesExpectedVsGot) {
  Trainer trainer(platform_, ml::make_cnn_config(2, 4, 32), TrainerOptions{});
  trainer.load_dataset(digits_.train);
  (void)trainer.train(2);
  const crypto::AesGcm gcm{trainer.data_key()};
  InferenceService service(platform_, trainer.network(), gcm);

  // A sealed query of the wrong plaintext size must be rejected before any
  // decryption, with a message naming both sizes.
  crypto::IvSequence iv(3);
  std::vector<float> short_sample(ml::kDigitPixels - 1, 0.5f);
  const Bytes query = crypto::seal(
      gcm, iv,
      ByteSpan(reinterpret_cast<const std::uint8_t*>(short_sample.data()),
               short_sample.size() * sizeof(float)));
  try {
    (void)service.classify_sealed(query);
    FAIL() << "wrong-size query must throw";
  } catch (const CryptoError& e) {
    const std::string msg = e.what();
    const std::size_t expected =
        crypto::sealed_size(ml::kDigitPixels * sizeof(float));
    EXPECT_NE(msg.find("expected " + std::to_string(expected)), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("got " + std::to_string(query.size())), std::string::npos)
        << msg;
  }
}

TEST_F(InferenceTest, OpenPredictionRejectsTruncationTamperAndBadPayload) {
  Trainer trainer(platform_, ml::make_cnn_config(2, 4, 32), TrainerOptions{});
  trainer.load_dataset(digits_.train);
  (void)trainer.train(2);
  const crypto::AesGcm gcm{trainer.data_key()};
  InferenceService service(platform_, trainer.network(), gcm);

  crypto::IvSequence iv(5);
  const Bytes query = crypto::seal(
      gcm, iv,
      ByteSpan(reinterpret_cast<const std::uint8_t*>(digits_.test.x.row(0)),
               ml::kDigitPixels * sizeof(float)));
  const Bytes reply = service.classify_sealed(query);

  // Truncated below the envelope overhead, truncated mid-ciphertext, and
  // MAC-corrupted replies must all fail as CryptoError.
  EXPECT_THROW((void)InferenceService::open_prediction(gcm, ByteSpan(reply.data(), 4)),
               CryptoError);
  EXPECT_THROW(
      (void)InferenceService::open_prediction(gcm, ByteSpan(reply.data(), reply.size() - 1)),
      CryptoError);
  Bytes mac_corrupt = reply;
  mac_corrupt[mac_corrupt.size() - 1] ^= 0x01;  // last MAC byte
  EXPECT_THROW((void)InferenceService::open_prediction(gcm, mac_corrupt), CryptoError);

  // An authentic envelope of the wrong payload size names expected vs got.
  crypto::IvSequence iv2(6);
  const Bytes bad_payload = crypto::seal(gcm, iv2, ByteSpan(reply.data(), 3));
  try {
    (void)InferenceService::open_prediction(gcm, bad_payload);
    FAIL() << "bad payload size must throw";
  } catch (const CryptoError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("expected 8"), std::string::npos) << msg;
    EXPECT_NE(msg.find("got 3"), std::string::npos) << msg;
  }

  // The untampered reply still opens fine afterwards.
  EXPECT_LT(InferenceService::open_prediction(gcm, reply), ml::kDigitClasses);
}

TEST_F(InferenceTest, ConcurrentSealedQueriesAreSafeAndAccounted) {
  Trainer trainer(platform_, ml::make_cnn_config(2, 4, 32), TrainerOptions{});
  trainer.load_dataset(digits_.train);
  (void)trainer.train(20);
  const crypto::AesGcm gcm{trainer.data_key()};
  InferenceService service(platform_, trainer.network(), gcm);

  // Baseline predictions from a single thread.
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 16;
  std::array<std::size_t, kThreads * kPerThread> expected{};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    expected[i] = service.classify(std::span<const float>(
        digits_.test.x.row(i), ml::kDigitPixels));
  }
  const std::uint64_t baseline_queries = service.stats().queries;

  // Hammer the service from several host threads; every call must return
  // the same prediction as the serial baseline (per-call scratch, forward
  // serialized) and every query must be counted exactly once.
  std::array<std::thread, kThreads> threads;
  std::atomic<int> mismatches{0};
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads[t] = std::thread([&, t] {
      crypto::IvSequence iv(100 + static_cast<std::uint32_t>(t));
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::size_t row = t * kPerThread + i;
        const Bytes query = crypto::seal(
            gcm, iv,
            ByteSpan(reinterpret_cast<const std::uint8_t*>(digits_.test.x.row(row)),
                     ml::kDigitPixels * sizeof(float)));
        const Bytes reply = service.classify_sealed(query);
        if (InferenceService::open_prediction(gcm, reply) != expected[row]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(service.stats().queries, baseline_queries + kThreads * kPerThread);
  EXPECT_EQ(service.stats().latency.count(), service.stats().queries);
}

TEST_F(InferenceTest, EvaluateMatchesNetworkAccuracy) {
  Trainer trainer(platform_, ml::make_cnn_config(3, 8, 64), TrainerOptions{});
  trainer.load_dataset(digits_.train);
  (void)trainer.train(60);
  const crypto::AesGcm gcm{trainer.data_key()};
  InferenceService service(platform_, trainer.network(), gcm);
  const double acc = service.evaluate(digits_.test);
  EXPECT_GT(acc, 0.5);
  EXPECT_LE(acc, 1.0);
}

}  // namespace
}  // namespace plinius
