#include <gtest/gtest.h>

#include "common/error.h"
#include "crypto/envelope.h"
#include "ml/config.h"
#include "plinius/gpu_offload.h"
#include "plinius/platform.h"

namespace plinius {
namespace {

crypto::AesGcm cipher_with(std::uint8_t fill) {
  Bytes key(16, fill);
  return crypto::AesGcm(key);
}

class GpuOffloadTest : public ::testing::Test {
 protected:
  GpuOffloadTest() : platform_(MachineProfile::emlsgx_pm(), 8 * 1024 * 1024) {
    Rng rng(1);
    net_ = std::make_unique<ml::Network>(
        ml::build_network(ml::make_cnn_config(3, 8, 32), rng));
  }

  Platform platform_;
  std::unique_ptr<ml::Network> net_;
};

TEST_F(GpuOffloadTest, RequiresUploadBeforeTraining) {
  GpuOffload gpu(platform_, GpuModel::v100(), cipher_with(1));
  EXPECT_FALSE(gpu.weights_resident());
  EXPECT_THROW(gpu.charge_training_iteration(*net_, 32), Error);
  gpu.upload_weights(*net_);
  EXPECT_TRUE(gpu.weights_resident());
  EXPECT_NO_THROW(gpu.charge_training_iteration(*net_, 32));
  EXPECT_EQ(gpu.stats().weight_uploads, 1u);
  EXPECT_EQ(gpu.stats().iterations, 1u);
}

TEST_F(GpuOffloadTest, BusSnooperSeesOnlyCiphertext) {
  GpuOffload gpu(platform_, GpuModel::v100(), cipher_with(2));
  gpu.upload_weights(*net_);
  const Bytes& wire = gpu.last_upload_ciphertext();
  ASSERT_FALSE(wire.empty());

  // The plaintext weights must not appear on the bus: check that the first
  // parameter buffer's bytes are not a substring of the wire blob.
  const auto params = net_->layer(0).parameters();
  const auto* raw = reinterpret_cast<const std::uint8_t*>(params[0].values.data());
  const std::size_t probe_len = std::min<std::size_t>(64, params[0].values.size() * 4);
  const auto it = std::search(wire.begin(), wire.end(), raw, raw + probe_len);
  EXPECT_EQ(it, wire.end());

  // But the GPU's session key recovers the first buffer exactly.
  const std::size_t sealed0 = crypto::sealed_size(params[0].values.size_bytes());
  const Bytes plain =
      crypto::open(cipher_with(2), ByteSpan(wire.data(), sealed0));
  EXPECT_EQ(0, std::memcmp(plain.data(), raw, plain.size()));

  // A GPU with the wrong session key gets nothing.
  EXPECT_THROW((void)crypto::open(cipher_with(3), ByteSpan(wire.data(), sealed0)),
               CryptoError);
}

TEST_F(GpuOffloadTest, ChargesTimeAndScalesWithModel) {
  GpuOffload small_gpu(platform_, GpuModel::v100(), cipher_with(4));
  small_gpu.upload_weights(*net_);
  sim::Stopwatch sw(platform_.clock());
  small_gpu.charge_training_iteration(*net_, 32);
  const auto small_ns = sw.elapsed();
  EXPECT_GT(small_ns, 0.0);

  Rng rng(2);
  ml::Network big = ml::build_network(ml::make_cnn_config(3, 32, 32), rng);
  GpuOffload big_gpu(platform_, GpuModel::v100(), cipher_with(4));
  big_gpu.upload_weights(big);
  sw.restart();
  big_gpu.charge_training_iteration(big, 32);
  EXPECT_GT(sw.elapsed(), small_ns);
}

TEST_F(GpuOffloadTest, FasterGpuMeansFasterIterations) {
  GpuOffload fast(platform_, GpuModel::v100(), cipher_with(5));
  GpuOffload slow(platform_, GpuModel::t4(), cipher_with(5));
  fast.upload_weights(*net_);
  slow.upload_weights(*net_);

  sim::Stopwatch sw(platform_.clock());
  fast.charge_training_iteration(*net_, 128);
  const auto fast_ns = sw.elapsed();
  sw.restart();
  slow.charge_training_iteration(*net_, 128);
  EXPECT_GT(sw.elapsed(), fast_ns);
  EXPECT_GT(fast.stats().compute_ns, 0.0);
  EXPECT_GT(fast.stats().transfer_ns, 0.0);
}

TEST_F(GpuOffloadTest, CpuIterationEstimateMatchesPlatformRate) {
  GpuOffload gpu(platform_, GpuModel::v100(), cipher_with(6));
  const double macs = 3.0 * static_cast<double>(net_->forward_macs()) * 128.0;
  const double expected_ns =
      macs / platform_.profile().compute_macs_per_s * 1e9;
  EXPECT_NEAR(gpu.cpu_iteration_ns(*net_, 128), expected_ns, 1.0);
}

}  // namespace
}  // namespace plinius
