// MetricsLog unit tests + end-to-end fault-injection sweeps over the
// Trainer: whatever iteration the process dies at, the restored state must
// be consistent (mirror iteration == model iteration == metrics tail).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "ml/config.h"
#include "ml/synth_digits.h"
#include "plinius/metrics_log.h"
#include "plinius/platform.h"
#include "plinius/trainer.h"
#include "romulus/romulus.h"

namespace plinius {
namespace {

class MetricsLogTest : public ::testing::Test {
 protected:
  MetricsLogTest()
      : platform_(MachineProfile::emlsgx_pm(), 8 * 1024 * 1024),
        rom_(platform_.pm(), 0, 3 * 1024 * 1024,
             romulus::PwbPolicy::clflushopt_sfence(), true),
        log_(rom_, platform_.enclave()) {}

  Platform platform_;
  romulus::Romulus rom_;
  MetricsLog log_;
};

TEST_F(MetricsLogTest, CreateAppendRead) {
  EXPECT_FALSE(log_.exists());
  EXPECT_THROW((void)log_.size(), Error);
  log_.create(100);
  EXPECT_TRUE(log_.exists());
  EXPECT_THROW(log_.create(100), PmError);
  EXPECT_EQ(log_.size(), 0u);
  EXPECT_EQ(log_.capacity(), 100u);

  log_.append({1, 2.5f, 0.1f});
  log_.append({2, 2.0f, 0.1f});
  EXPECT_EQ(log_.size(), 2u);
  EXPECT_EQ(log_.at(0).iteration, 1u);
  EXPECT_FLOAT_EQ(log_.at(1).loss, 2.0f);
  EXPECT_THROW((void)log_.at(2), PmError);
  EXPECT_EQ(log_.all().size(), 2u);
}

TEST_F(MetricsLogTest, FullLogThrows) {
  log_.create(2);
  log_.append({1, 1.0f, 0.1f});
  log_.append({2, 1.0f, 0.1f});
  EXPECT_THROW(log_.append({3, 1.0f, 0.1f}), PmError);
}

TEST_F(MetricsLogTest, TruncateAfterDropsStaleTail) {
  log_.create(10);
  for (std::uint64_t i = 1; i <= 6; ++i) {
    log_.append({i, static_cast<float>(i), 0.1f});
  }
  log_.truncate_after(4);
  EXPECT_EQ(log_.size(), 4u);
  EXPECT_EQ(log_.at(3).iteration, 4u);
  log_.truncate_after(100);  // no-op
  EXPECT_EQ(log_.size(), 4u);
  log_.truncate_after(0);
  EXPECT_EQ(log_.size(), 0u);
}

TEST_F(MetricsLogTest, EntriesSurviveCrash) {
  log_.create(10);
  log_.append({1, 3.5f, 0.1f});
  log_.append({2, 3.0f, 0.1f});
  platform_.pm().crash();

  romulus::Romulus recovered(platform_.pm(), 0, 3 * 1024 * 1024,
                             romulus::PwbPolicy::clflushopt_sfence());
  MetricsLog log2(recovered, platform_.enclave());
  ASSERT_TRUE(log2.exists());
  EXPECT_EQ(log2.size(), 2u);
  EXPECT_FLOAT_EQ(log2.at(0).loss, 3.5f);
}

TEST_F(MetricsLogTest, AppendIsAtomicUnderCrash) {
  log_.create(10);
  log_.append({1, 1.0f, 0.1f});
  // Crash with an append's transaction abandoned mid-way.
  rom_.begin_transaction();
  const MetricsEntry e{2, 9.0f, 0.1f};
  rom_.tx_store(64 * 1024, &e, sizeof(e));  // somewhere in the heap
  rom_.abandon_transaction();
  platform_.pm().crash();

  romulus::Romulus recovered(platform_.pm(), 0, 3 * 1024 * 1024,
                             romulus::PwbPolicy::clflushopt_sfence());
  MetricsLog log2(recovered, platform_.enclave());
  EXPECT_EQ(log2.size(), 1u);  // the torn append is invisible
}

// --- Trainer fault-injection sweep ----------------------------------------------

class TrainerCrashSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrainerCrashSweep, ResumesConsistentlyFromAnyCrashPoint) {
  const std::uint64_t crash_iter = GetParam();
  Platform platform(MachineProfile::emlsgx_pm(), 48 * 1024 * 1024);
  const auto config = ml::make_cnn_config(2, 4, 8);
  ml::SynthDigitsOptions dopt;
  dopt.train_count = 64;
  dopt.test_count = 1;
  const auto data = ml::make_synth_digits(dopt).train;

  {
    Trainer trainer(platform, config, TrainerOptions{});
    trainer.load_dataset(data);
    try {
      trainer.train(24, [&](std::uint64_t iter, float) {
        if (iter == crash_iter) throw SimulatedCrash("sweep");
      });
    } catch (const SimulatedCrash&) {
    }
  }
  platform.pm().crash();

  Trainer resumed(platform, config, TrainerOptions{});
  resumed.load_dataset(data);
  const std::uint64_t resume_iter = resumed.resume_or_init();
  // Mirroring every iteration: resume exactly at the crash point.
  EXPECT_EQ(resume_iter, crash_iter);
  EXPECT_EQ(resumed.network().iterations(), crash_iter);

  // Metrics log tail must agree with the mirror.
  auto& log = resumed.metrics();
  ASSERT_TRUE(log.exists());
  EXPECT_EQ(log.size(), crash_iter);
  if (crash_iter > 0) {
    EXPECT_EQ(log.at(crash_iter - 1).iteration, crash_iter);
  }

  const float final_loss = resumed.train(24);
  EXPECT_TRUE(std::isfinite(final_loss));
  EXPECT_EQ(resumed.network().iterations(), 24u);
  EXPECT_EQ(resumed.metrics().size(), 24u);
}

INSTANTIATE_TEST_SUITE_P(CrashPoints, TrainerCrashSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 23));

TEST(TrainerMetrics, DisabledWhenCapacityZero) {
  Platform platform(MachineProfile::emlsgx_pm(), 48 * 1024 * 1024);
  TrainerOptions opt;
  opt.metrics_capacity = 0;
  Trainer trainer(platform, ml::make_cnn_config(2, 4, 8), opt);
  EXPECT_THROW((void)trainer.metrics(), Error);
}

TEST(TrainerMetrics, LogMatchesLossHistory) {
  Platform platform(MachineProfile::emlsgx_pm(), 48 * 1024 * 1024);
  Trainer trainer(platform, ml::make_cnn_config(2, 4, 8), TrainerOptions{});
  ml::SynthDigitsOptions dopt;
  dopt.train_count = 64;
  dopt.test_count = 1;
  trainer.load_dataset(ml::make_synth_digits(dopt).train);
  (void)trainer.train(10);

  const auto entries = trainer.metrics().all();
  ASSERT_EQ(entries.size(), 10u);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].iteration, i + 1);
    EXPECT_FLOAT_EQ(entries[i].loss, trainer.loss_history()[i]);
    EXPECT_GT(entries[i].learning_rate, 0.0f);
  }
}

// Crash injected *inside* mirror-out at the device level: the mirror must
// recover to the previous iteration, never a torn state.
TEST(TrainerMirrorCrash, DeviceCrashDuringMirrorOutRecovers) {
  Platform platform(MachineProfile::emlsgx_pm(), 48 * 1024 * 1024);
  const auto config = ml::make_cnn_config(2, 4, 8);
  ml::SynthDigitsOptions dopt;
  dopt.train_count = 64;
  dopt.test_count = 1;
  const auto data = ml::make_synth_digits(dopt).train;

  {
    Trainer trainer(platform, config, TrainerOptions{});
    trainer.load_dataset(data);
    (void)trainer.train(5);
    // Open a transaction that mutates the mirror area and abandon it
    // (process dies mid-mirror-out, after some PWBs landed).
    auto& rom = trainer.romulus();
    rom.begin_transaction();
    rom.tx_assign(rom.root(MirrorModel::kRootSlot) + 8, std::uint64_t{6});
    rom.abandon_transaction();
  }
  platform.pm().crash();

  Trainer resumed(platform, config, TrainerOptions{});
  resumed.load_dataset(data);
  EXPECT_EQ(resumed.resume_or_init(), 5u);  // the torn iter=6 rolled back
}

}  // namespace
}  // namespace plinius
