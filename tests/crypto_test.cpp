#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "common/bytes.h"
#include "common/error.h"
#include "common/rng.h"
#include "crypto/aes.h"
#include "crypto/envelope.h"
#include "crypto/gcm.h"
#include "crypto/sha256.h"

namespace plinius::crypto {
namespace {

// --- AES-128 (FIPS-197 / NIST test vectors) -------------------------------

TEST(Aes128, Fips197AppendixB) {
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes plain = from_hex("3243f6a8885a308d313198a2e0370734");
  const Bytes expected = from_hex("3925841d02dc09fbdc118597196a0b32");
  Aes128 aes(key);
  std::uint8_t out[16];
  aes.encrypt_block(plain.data(), out);
  EXPECT_EQ(to_hex(ByteSpan(out, 16)), to_hex(expected));
}

TEST(Aes128, NistEcbVector) {
  // NIST SP 800-38A F.1.1 ECB-AES128 block #1.
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes plain = from_hex("6bc1bee22e409f96e93d7e117393172a");
  const Bytes expected = from_hex("3ad77bb40d7a3660a89ecaf32466ef97");
  Aes128 aes(key);
  std::uint8_t out[16];
  aes.encrypt_block(plain.data(), out);
  EXPECT_EQ(to_hex(ByteSpan(out, 16)), to_hex(expected));
}

TEST(Aes, Fips197AppendixC_AllKeySizes) {
  const Bytes plain = from_hex("00112233445566778899aabbccddeeff");
  struct Case {
    const char* key;
    const char* expected;
    int rounds;
  };
  const Case cases[] = {
      {"000102030405060708090a0b0c0d0e0f", "69c4e0d86a7b0430d8cdb78070b4c55a", 10},
      {"000102030405060708090a0b0c0d0e0f1011121314151617",
       "dda97ca4864cdfe06eaf70a0ec0d7191", 12},
      {"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
       "8ea2b7ca516745bfeafc49904b496089", 14},
  };
  for (const auto& c : cases) {
    Aes aes(from_hex(c.key));
    EXPECT_EQ(aes.rounds(), c.rounds);
    std::uint8_t out[16];
    aes.encrypt_block(plain.data(), out);
    EXPECT_EQ(to_hex(ByteSpan(out, 16)), c.expected);
    std::uint8_t back[16];
    aes.decrypt_block(out, back);
    EXPECT_EQ(to_hex(ByteSpan(back, 16)), to_hex(plain));
  }
}

TEST(Aes, Gcm256NistTestCase16) {
  const Bytes key = from_hex(
      "feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308");
  const Bytes iv = from_hex("cafebabefacedbaddecaf888");
  const Bytes plain = from_hex(
      "d9313225f88406e5a55909c5aff5269a"
      "86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525"
      "b16aedf5aa0de657ba637b39");
  const Bytes aad = from_hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
  const Bytes expect_ct = from_hex(
      "522dc1f099567d07f47f37a32a84427d"
      "643a8cdcbfe5c0c97598a2bd2555d1aa"
      "8cb08e48590dbb3da7b08b1056828838"
      "c5f61e6393ba7a0abcc9f662");
  const Bytes expect_tag = from_hex("76fc6ece0f4e1768cddf8853bb2d551b");

  AesGcm gcm(key);
  Bytes ct(plain.size());
  std::uint8_t tag[16];
  gcm.encrypt(iv, aad, plain, ct, tag);
  EXPECT_EQ(to_hex(ct), to_hex(expect_ct));
  EXPECT_EQ(to_hex(ByteSpan(tag, 16)), to_hex(expect_tag));
  Bytes back(plain.size());
  EXPECT_TRUE(gcm.decrypt(iv, aad, ct, back, tag));
  EXPECT_EQ(back, plain);
}

TEST(Aes, RejectsInvalidKeySizes) {
  EXPECT_THROW(Aes{Bytes(15)}, CryptoError);
  EXPECT_THROW(Aes{Bytes(20)}, CryptoError);
  EXPECT_THROW(Aes{Bytes(33)}, CryptoError);
  EXPECT_NO_THROW(Aes{Bytes(24)});
}

TEST(Aes128, DecryptInvertsEncrypt) {
  Rng rng(1);
  Bytes key(16);
  rng.fill(key.data(), key.size());
  Aes128 aes(key);
  for (int i = 0; i < 32; ++i) {
    std::uint8_t plain[16], ct[16], back[16];
    rng.fill(plain, 16);
    aes.encrypt_block(plain, ct);
    aes.decrypt_block(ct, back);
    EXPECT_EQ(0, memcmp(plain, back, 16));
  }
}

TEST(Aes128, RejectsWrongKeySize) {
  const Bytes short_key(8);
  EXPECT_THROW(Aes128 a{ByteSpan(short_key)}, CryptoError);
}

TEST(Aes128, CtrMatchesNistVector) {
  // NIST SP 800-38A F.5.1 CTR-AES128.
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes ctr = from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const Bytes plain = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  const Bytes expected = from_hex(
      "874d6191b620e3261bef6864990db6ce"
      "9806f66b7970fdff8617187bb9fffdff"
      "5ae4df3edbd5d35e5b4f09020db03eab"
      "1e031dda2fbe03d1792170a0f3009cee");
  Aes128 aes(key);
  Bytes out(plain.size());
  aes.ctr_xcrypt(ctr.data(), plain, out);
  EXPECT_EQ(to_hex(out), to_hex(expected));
}

TEST(Aes128, CtrIsAnInvolution) {
  Rng rng(2);
  Bytes key(16), ctr(16);
  rng.fill(key.data(), 16);
  rng.fill(ctr.data(), 16);
  Aes128 aes(key);
  // Odd length exercises the partial-block tail.
  Bytes plain(1000 + 13);
  rng.fill(plain.data(), plain.size());
  Bytes ct(plain.size()), back(plain.size());
  aes.ctr_xcrypt(ctr.data(), plain, ct);
  aes.ctr_xcrypt(ctr.data(), ct, back);
  EXPECT_EQ(plain, back);
  EXPECT_NE(plain, ct);
}

// --- GHASH / GF(2^128) ------------------------------------------------------

TEST(Ghash, PortableMatchesClmulWhenAvailable) {
  if (!detail::clmul_supported()) GTEST_SKIP() << "no PCLMUL on this CPU";
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    std::uint8_t x[16], h[16], a[16], b[16];
    rng.fill(x, 16);
    rng.fill(h, 16);
    gf128_mul(x, h, a);
    detail::clmul_gf128_mul(x, h, b);
    ASSERT_EQ(0, memcmp(a, b, 16)) << "mismatch at trial " << i;
  }
}

TEST(Ghash, MultiplyByZeroIsZero) {
  std::uint8_t x[16], h[16] = {}, out[16];
  Rng(4).fill(x, 16);
  gf128_mul(x, h, out);
  for (const auto b : out) EXPECT_EQ(b, 0);
}

TEST(Ghash, IncrementalMatchesOneShot) {
  Rng rng(5);
  std::uint8_t h[16];
  rng.fill(h, 16);
  Bytes data(321);
  rng.fill(data.data(), data.size());

  Ghash one(h);
  one.update_padded(data);
  one.finish_lengths(0, data.size());
  std::uint8_t d1[16];
  one.digest(d1);

  Ghash two(h);
  two.update(ByteSpan(data.data(), 100));
  two.update(ByteSpan(data.data() + 100, 21));
  two.update_padded(ByteSpan(data.data() + 121, 200));
  two.finish_lengths(0, data.size());
  std::uint8_t d2[16];
  two.digest(d2);

  EXPECT_EQ(0, memcmp(d1, d2, 16));
}

// --- AES-GCM (NIST GCM test vectors) ----------------------------------------

TEST(AesGcm, NistTestCase3) {
  // McGrew & Viega GCM spec, test case 3 (AES-128, 12-byte IV, no AAD).
  const Bytes key = from_hex("feffe9928665731c6d6a8f9467308308");
  const Bytes iv = from_hex("cafebabefacedbaddecaf888");
  const Bytes plain = from_hex(
      "d9313225f88406e5a55909c5aff5269a"
      "86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525"
      "b16aedf5aa0de657ba637b391aafd255");
  const Bytes expect_ct = from_hex(
      "42831ec2217774244b7221b784d0d49c"
      "e3aa212f2c02a4e035c17e2329aca12e"
      "21d514b25466931c7d8f6a5aac84aa05"
      "1ba30b396a0aac973d58e091473f5985");
  const Bytes expect_tag = from_hex("4d5c2af327cd64a62cf35abd2ba6fab4");

  AesGcm gcm(key);
  Bytes ct(plain.size());
  std::uint8_t tag[16];
  gcm.encrypt(iv, {}, plain, ct, tag);
  EXPECT_EQ(to_hex(ct), to_hex(expect_ct));
  EXPECT_EQ(to_hex(ByteSpan(tag, 16)), to_hex(expect_tag));

  Bytes back(plain.size());
  EXPECT_TRUE(gcm.decrypt(iv, {}, ct, back, tag));
  EXPECT_EQ(back, plain);
}

TEST(AesGcm, NistTestCase4WithAad) {
  // Test case 4: AAD present, truncated plaintext.
  const Bytes key = from_hex("feffe9928665731c6d6a8f9467308308");
  const Bytes iv = from_hex("cafebabefacedbaddecaf888");
  const Bytes plain = from_hex(
      "d9313225f88406e5a55909c5aff5269a"
      "86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525"
      "b16aedf5aa0de657ba637b39");
  const Bytes aad = from_hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
  const Bytes expect_ct = from_hex(
      "42831ec2217774244b7221b784d0d49c"
      "e3aa212f2c02a4e035c17e2329aca12e"
      "21d514b25466931c7d8f6a5aac84aa05"
      "1ba30b396a0aac973d58e091");
  const Bytes expect_tag = from_hex("5bc94fbc3221a5db94fae95ae7121a47");

  AesGcm gcm(key);
  Bytes ct(plain.size());
  std::uint8_t tag[16];
  gcm.encrypt(iv, aad, plain, ct, tag);
  EXPECT_EQ(to_hex(ct), to_hex(expect_ct));
  EXPECT_EQ(to_hex(ByteSpan(tag, 16)), to_hex(expect_tag));
}

TEST(AesGcm, EmptyPlaintextProducesTagOnly) {
  // Test case 1: all-zero key, empty everything.
  const Bytes key(16, 0);
  const Bytes iv(12, 0);
  AesGcm gcm(key);
  std::uint8_t tag[16];
  gcm.encrypt(iv, {}, {}, {}, tag);
  EXPECT_EQ(to_hex(ByteSpan(tag, 16)), "58e2fccefa7e3061367f1d57a4e7455a");
}

TEST(AesGcm, TamperedCiphertextRejected) {
  Rng rng(6);
  Bytes key(16), iv(12);
  rng.fill(key.data(), 16);
  rng.fill(iv.data(), 12);
  Bytes plain(777);
  rng.fill(plain.data(), plain.size());

  AesGcm gcm(key);
  Bytes ct(plain.size());
  std::uint8_t tag[16];
  gcm.encrypt(iv, {}, plain, ct, tag);

  ct[100] ^= 0x01;
  Bytes back(plain.size(), 0xAA);
  EXPECT_FALSE(gcm.decrypt(iv, {}, ct, back, tag));
  // Output must be scrubbed on failure.
  for (const auto b : back) EXPECT_EQ(b, 0);
}

TEST(AesGcm, TamperedTagRejected) {
  Rng rng(7);
  Bytes key(16), iv(12), plain(64);
  rng.fill(key.data(), 16);
  rng.fill(iv.data(), 12);
  rng.fill(plain.data(), plain.size());

  AesGcm gcm(key);
  Bytes ct(plain.size());
  std::uint8_t tag[16];
  gcm.encrypt(iv, {}, plain, ct, tag);
  tag[0] ^= 0x80;
  Bytes back(plain.size());
  EXPECT_FALSE(gcm.decrypt(iv, {}, ct, back, tag));
}

TEST(AesGcm, WrongAadRejected) {
  Rng rng(8);
  Bytes key(16), iv(12), plain(64);
  rng.fill(key.data(), 16);
  rng.fill(iv.data(), 12);
  rng.fill(plain.data(), plain.size());
  const Bytes aad1 = {1, 2, 3};
  const Bytes aad2 = {1, 2, 4};

  AesGcm gcm(key);
  Bytes ct(plain.size());
  std::uint8_t tag[16];
  gcm.encrypt(iv, aad1, plain, ct, tag);
  Bytes back(plain.size());
  EXPECT_FALSE(gcm.decrypt(iv, aad2, ct, back, tag));
  EXPECT_TRUE(gcm.decrypt(iv, aad1, ct, back, tag));
}

TEST(AesGcm, NonTwelveByteIvSupported) {
  Rng rng(9);
  Bytes key(16), iv(17), plain(100);
  rng.fill(key.data(), 16);
  rng.fill(iv.data(), iv.size());
  rng.fill(plain.data(), plain.size());
  AesGcm gcm(key);
  Bytes ct(plain.size());
  std::uint8_t tag[16];
  gcm.encrypt(iv, {}, plain, ct, tag);
  Bytes back(plain.size());
  EXPECT_TRUE(gcm.decrypt(iv, {}, ct, back, tag));
  EXPECT_EQ(back, plain);
}

// --- Envelope (IV || CT || MAC, the paper's 28-byte overhead) ---------------

TEST(Envelope, OverheadIs28Bytes) {
  EXPECT_EQ(kSealOverhead, 28u);
  EXPECT_EQ(sealed_size(100), 128u);
  EXPECT_EQ(unsealed_size(128), 100u);
  EXPECT_THROW((void)unsealed_size(27), CryptoError);
}

TEST(Envelope, RoundTrip) {
  Rng rng(10);
  Bytes key(16);
  rng.fill(key.data(), 16);
  AesGcm gcm(key);
  Bytes plain(12345);
  rng.fill(plain.data(), plain.size());

  IvSequence iv_seq(11);
  const Bytes sealed = seal(gcm, iv_seq, plain);
  EXPECT_EQ(sealed.size(), plain.size() + 28);
  EXPECT_EQ(open(gcm, sealed), plain);
}

TEST(Envelope, FreshIvPerSeal) {
  Rng rng(12);
  IvSequence iv_seq(13);
  Bytes key(16), plain(32);
  rng.fill(key.data(), 16);
  rng.fill(plain.data(), plain.size());
  AesGcm gcm(key);
  const Bytes s1 = seal(gcm, iv_seq, plain);
  const Bytes s2 = seal(gcm, iv_seq, plain);
  // Same plaintext, different IV => different ciphertext.
  EXPECT_NE(s1, s2);
}

TEST(Envelope, OpenThrowsOnCorruption) {
  Rng rng(14);
  IvSequence iv_seq(15);
  Bytes key(16), plain(64);
  rng.fill(key.data(), 16);
  rng.fill(plain.data(), plain.size());
  AesGcm gcm(key);
  Bytes sealed = seal(gcm, iv_seq, plain);
  sealed[20] ^= 0xFF;
  EXPECT_THROW(open(gcm, sealed), CryptoError);
}

TEST(Envelope, WrongKeyFails) {
  Rng rng(16);
  IvSequence iv_seq(17);
  Bytes key1(16), key2(16), plain(64);
  rng.fill(key1.data(), 16);
  rng.fill(key2.data(), 16);
  rng.fill(plain.data(), plain.size());
  AesGcm gcm1(key1), gcm2(key2);
  const Bytes sealed = seal(gcm1, iv_seq, plain);
  EXPECT_THROW(open(gcm2, sealed), CryptoError);
}

TEST(Envelope, IvSequenceNeverRepeatsAcrossSeals) {
  // Satellite #4: the sealed envelope's first kGcmIvSize bytes are the IV.
  // Two seals under the same sequence must never share one.
  Rng rng(18);
  Bytes key(16), plain(48);
  rng.fill(key.data(), 16);
  rng.fill(plain.data(), plain.size());
  AesGcm gcm(key);
  IvSequence iv_seq(0xA5A5A5A5u);
  std::set<Bytes> ivs;
  for (int i = 0; i < 256; ++i) {
    const Bytes sealed = seal(gcm, iv_seq, plain);
    ASSERT_GE(sealed.size(), kGcmIvSize);
    Bytes iv(sealed.begin(), sealed.begin() + kGcmIvSize);
    EXPECT_TRUE(ivs.insert(std::move(iv)).second) << "IV reused at seal " << i;
  }
  EXPECT_EQ(iv_seq.issued(), 256u);
}

TEST(Envelope, IvSequenceLayoutIsSaltThenCounter) {
  // NIST SP 800-38D deterministic construction: fixed field (salt, 4B BE)
  // followed by the invocation counter (8B BE).
  IvSequence iv_seq(0x01020304u);
  std::uint8_t iv[kGcmIvSize];
  iv_seq.next(iv);
  const std::uint8_t expect0[kGcmIvSize] = {1, 2, 3, 4, 0, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_EQ(std::memcmp(iv, expect0, kGcmIvSize), 0);
  iv_seq.next(iv);
  const std::uint8_t expect1[kGcmIvSize] = {1, 2, 3, 4, 0, 0, 0, 0, 0, 0, 0, 1};
  EXPECT_EQ(std::memcmp(iv, expect1, kGcmIvSize), 0);
  EXPECT_EQ(iv_seq.salt(), 0x01020304u);
  EXPECT_EQ(iv_seq.issued(), 2u);
}

TEST(Envelope, SaltedSequencesFromDistinctRngsDiffer) {
  Rng a(21), b(22);
  const IvSequence sa = IvSequence::salted(a);
  const IvSequence sb = IvSequence::salted(b);
  EXPECT_NE(sa.salt(), sb.salt());
}

// --- SHA-256 / HMAC ----------------------------------------------------------

TEST(Sha256, EmptyString) {
  const auto d = Sha256::hash({});
  EXPECT_EQ(to_hex(ByteSpan(d.data(), d.size())),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  const std::uint8_t abc[] = {'a', 'b', 'c'};
  const auto d = Sha256::hash(ByteSpan(abc, 3));
  EXPECT_EQ(to_hex(ByteSpan(d.data(), d.size())),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  const std::string msg = "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  const auto d = Sha256::hash(ByteSpan(reinterpret_cast<const std::uint8_t*>(msg.data()),
                                       msg.size()));
  EXPECT_EQ(to_hex(ByteSpan(d.data(), d.size())),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Rng rng(18);
  Bytes data(1000);
  rng.fill(data.data(), data.size());
  const auto one = Sha256::hash(data);

  Sha256 h;
  h.update(ByteSpan(data.data(), 1));
  h.update(ByteSpan(data.data() + 1, 62));
  h.update(ByteSpan(data.data() + 63, 937));
  std::uint8_t d2[32];
  h.final(d2);
  EXPECT_EQ(0, memcmp(one.data(), d2, 32));
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  std::uint8_t d[32];
  h.final(d);
  EXPECT_EQ(to_hex(ByteSpan(d, 32)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const std::string msg = "Hi There";
  const auto mac = hmac_sha256(
      key, ByteSpan(reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(to_hex(ByteSpan(mac.data(), mac.size())),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const std::string key = "Jefe";
  const std::string msg = "what do ya want for nothing?";
  const auto mac = hmac_sha256(
      ByteSpan(reinterpret_cast<const std::uint8_t*>(key.data()), key.size()),
      ByteSpan(reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(to_hex(ByteSpan(mac.data(), mac.size())),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  // RFC 4231 test case 6: 131-byte key.
  const Bytes key(131, 0xaa);
  const std::string msg = "Test Using Larger Than Block-Size Key - Hash Key First";
  const auto mac = hmac_sha256(
      key, ByteSpan(reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(to_hex(ByteSpan(mac.data(), mac.size())),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(DeriveKey, DistinctInfoDistinctKeys) {
  const Bytes master(16, 0x42);
  Bytes k1(16), k2(16);
  const std::string info1 = "seal", info2 = "mac";
  derive_key(master, ByteSpan(reinterpret_cast<const std::uint8_t*>(info1.data()),
                              info1.size()),
             k1);
  derive_key(master, ByteSpan(reinterpret_cast<const std::uint8_t*>(info2.data()),
                              info2.size()),
             k2);
  EXPECT_NE(k1, k2);
  Bytes too_long(64);
  EXPECT_THROW(derive_key(master, ByteSpan{}, too_long), Error);
}

}  // namespace
}  // namespace plinius::crypto
