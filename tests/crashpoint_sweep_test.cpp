// Exhaustive crash-point sweeps over the PM/Romulus/mirror stack.
//
// Every test here follows the same shape: run a workload once to number its
// persistence ops, then re-run it once per (crash point, pending-line
// outcome), power-fail the device mid-flight, recover, and assert the
// durability invariants. A failure names the exact op the crash preceded.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/clock.h"
#include "common/error.h"
#include "common/rng.h"
#include "ml/config.h"
#include "pm/device.h"
#include "pm/faultpoint.h"
#include "plinius/mirror.h"
#include "plinius/platform.h"
#include "romulus/romulus.h"

namespace plinius {
namespace {

using pm::CrashSweepOptions;
using pm::CrashSweepReport;
using pm::FaultInjector;
using pm::FaultOp;
using romulus::PwbPolicy;
using romulus::Romulus;

constexpr std::size_t kMain = 64 * 1024;

// --- FaultInjector unit tests ------------------------------------------------

class FaultInjectorTest : public ::testing::Test {
 protected:
  FaultInjectorTest()
      : dev_(clock_, 4096, pm::PmLatencyModel::optane(), 7) {}

  sim::Clock clock_;
  pm::PmDevice dev_;
};

TEST_F(FaultInjectorTest, CountsEveryOpKind) {
  FaultInjector fi(dev_);
  const std::uint64_t v = 42;
  dev_.store(0, &v, sizeof(v));
  dev_.store(64, &v, sizeof(v));
  dev_.flush(0, sizeof(v), pm::FlushKind::kClflushOpt);
  dev_.fence(pm::FenceKind::kSfence);
  EXPECT_EQ(fi.counts().stores, 2u);
  EXPECT_EQ(fi.counts().flushes, 1u);
  EXPECT_EQ(fi.counts().fences, 1u);
  EXPECT_EQ(fi.ops(), 4u);

  fi.reset();
  EXPECT_EQ(fi.ops(), 0u);
}

TEST_F(FaultInjectorTest, ArmedTriggerFiresBeforeTargetOp) {
  FaultInjector fi(dev_);
  const std::uint64_t v = 7;
  fi.arm(3);
  dev_.store(0, &v, sizeof(v));   // op 1: executes
  dev_.store(64, &v, sizeof(v));  // op 2: executes
  EXPECT_THROW(dev_.store(128, &v, sizeof(v)), SimulatedCrash);  // op 3
  // Ops 1 and 2 reached the volatile image; op 3 did not.
  EXPECT_EQ(std::memcmp(dev_.data(), &v, sizeof(v)), 0);
  std::uint64_t at128 = 0;
  std::memcpy(&at128, dev_.data() + 128, sizeof(at128));
  EXPECT_EQ(at128, 0u);

  // The trigger self-disarms: the same op retried now succeeds.
  EXPECT_FALSE(fi.armed());
  dev_.store(128, &v, sizeof(v));
  EXPECT_FALSE(fi.last_op().empty());
}

TEST_F(FaultInjectorTest, SecondInjectorOnSameDeviceThrows) {
  FaultInjector fi(dev_);
  EXPECT_THROW(FaultInjector second(dev_), Error);
}

TEST_F(FaultInjectorTest, DetachesOnDestruction) {
  {
    FaultInjector fi(dev_);
    fi.arm(1);
  }
  const std::uint64_t v = 1;
  dev_.store(0, &v, sizeof(v));  // no injector attached: must not throw
  FaultInjector again(dev_);     // re-attach after detach is fine
  EXPECT_EQ(again.ops(), 0u);
}

TEST_F(FaultInjectorTest, ArmZeroThrows) {
  FaultInjector fi(dev_);
  EXPECT_THROW(fi.arm(0), Error);
}

// --- Plain Romulus transaction sweep -----------------------------------------

class CrashSweepTest : public ::testing::Test {
 protected:
  CrashSweepTest()
      : dev_(clock_, Romulus::region_bytes(kMain), pm::PmLatencyModel::optane(),
             7) {
    // Format once; the sweep snapshots this as the initial image.
    Romulus rom(dev_, 0, kMain, PwbPolicy::clflushopt_sfence(), /*format=*/true);
  }

  // Re-attaches (running recovery), checks the invariants every recovered
  // region must satisfy regardless of where the crash hit, then hands the
  // recovered instance to `fn` for workload-specific checks.
  template <typename Fn>
  void with_recovered(Fn&& fn) {
    Romulus rom(dev_, 0, kMain, PwbPolicy::clflushopt_sfence());
    EXPECT_EQ(rom.header_state(), Romulus::State::kIdle);
    rom.validate_allocator();
    fn(rom);
  }

  sim::Clock clock_;
  pm::PmDevice dev_;
};

TEST_F(CrashSweepTest, MultiWordTransactionIsAllOrNothing) {
  constexpr std::uint64_t kPattern = 0xAB00000000000000ULL;
  constexpr int kWords = 8;

  const auto workload = [&] {
    Romulus rom(dev_, 0, kMain, PwbPolicy::clflushopt_sfence());
    rom.run_transaction([&] {
      const std::size_t off = rom.pmalloc(kWords * sizeof(std::uint64_t));
      for (int k = 0; k < kWords; ++k) {
        rom.tx_assign(off + k * sizeof(std::uint64_t), kPattern + k);
      }
      rom.set_root(0, off);
    });
  };
  const auto verify = [&] {
    with_recovered([&](Romulus& rom) {
      const std::uint64_t root = rom.root(0);
      if (root == 0) return;  // transaction rolled back entirely
      // Transaction committed: every word must be present — a subset means
      // a torn transaction leaked through recovery.
      for (int k = 0; k < kWords; ++k) {
        ASSERT_EQ(rom.read<std::uint64_t>(root + k * sizeof(std::uint64_t)),
                  kPattern + k)
            << "torn word " << k << " after recovery";
      }
      EXPECT_GT(rom.allocated_bytes(), 0u);
    });
  };

  const CrashSweepReport report = pm::sweep_crash_points(dev_, workload, verify);
  EXPECT_TRUE(report.exhaustive());
  EXPECT_GT(report.workload_ops.stores, 0u);
  EXPECT_GT(report.workload_ops.flushes, 0u);
  EXPECT_GT(report.workload_ops.fences, 0u);
  // Both pending-line outcomes over every op boundary.
  EXPECT_EQ(report.points, 2 * report.workload_ops.total());
  EXPECT_EQ(report.crashes, report.points);
}

TEST_F(CrashSweepTest, SeededRandomOutcomeAtEveryFence) {
  // The seeded coin-flip path (CrashOutcome::kSeededRandom) is the third
  // pending-line model: per-line Bernoulli(1/2). Sweep every fence boundary
  // under it by hand — the two deterministic extremes are covered above.
  const auto workload = [&] {
    Romulus rom(dev_, 0, kMain, PwbPolicy::clflushopt_sfence());
    rom.run_transaction([&] {
      const std::size_t off = rom.pmalloc(512);
      rom.tx_assign(off, std::uint64_t{0xC0FFEE});
      rom.set_root(0, off);
    });
  };

  pm::FaultInjector fi(dev_);
  const Bytes initial = dev_.snapshot_persistent();
  workload();
  const std::uint64_t fences = fi.counts().fences;
  const std::uint64_t total = fi.ops();
  ASSERT_GT(fences, 0u);

  std::uint64_t swept_fences = 0;
  std::uint64_t seen = 0;
  for (std::uint64_t n = 1; n <= total; ++n) {
    // Find the op number of each fence by replaying with a trigger and
    // checking the diagnostic; simpler: sweep all ops, random outcome.
    dev_.restore_persistent(initial);
    fi.reset();
    fi.arm(n);
    bool fired = false;
    try {
      workload();
    } catch (const SimulatedCrash&) {
      fired = true;
    }
    fi.disarm();
    ASSERT_TRUE(fired);
    if (fi.last_op().find("fence") != std::string::npos) ++swept_fences;
    dev_.crash(pm::PmDevice::CrashOutcome::kSeededRandom);
    Romulus rom(dev_, 0, kMain, PwbPolicy::clflushopt_sfence());
    EXPECT_EQ(rom.header_state(), Romulus::State::kIdle);
    rom.validate_allocator();
    if (rom.root(0) != 0) {
      EXPECT_EQ(rom.read<std::uint64_t>(rom.root(0)), 0xC0FFEEu);
    }
    ++seen;
  }
  EXPECT_EQ(seen, total);
  EXPECT_EQ(swept_fences, fences);
  dev_.restore_persistent(initial);
}

// --- Allocator free-list churn sweep (satellite: pmalloc/pmfree splitting) ---

TEST_F(CrashSweepTest, AllocatorChurnLeavesNoLeaksOrDoubleLinks) {
  constexpr std::uint64_t kMark = 0x11D0000000000000ULL;

  const auto workload = [&] {
    Romulus rom(dev_, 0, kMain, PwbPolicy::clflushopt_sfence());
    rom.run_transaction([&] {
      // Allocate a run of blocks, free alternating ones (free-list growth),
      // then allocate smaller blocks that split the freed ones.
      std::size_t a[6] = {};
      for (int i = 0; i < 6; ++i) {
        a[i] = rom.pmalloc(256 + 64 * static_cast<std::size_t>(i));
        rom.tx_assign(a[i], kMark + static_cast<std::uint64_t>(i));
      }
      rom.pmfree(a[1]);
      rom.pmfree(a[3]);
      rom.pmfree(a[4]);
      const std::size_t b0 = rom.pmalloc(64);  // split of a freed block
      const std::size_t b1 = rom.pmalloc(64);  // split remainder reuse
      rom.tx_assign(b0, kMark + 100);
      rom.tx_assign(b1, kMark + 101);
      rom.set_root(0, a[0]);
      rom.set_root(1, b0);
      rom.set_root(2, b1);
    });
  };
  const auto verify = [&] {
    with_recovered([&](Romulus& rom) {  // validate_allocator: no leak,
                                        // no double-link, exact accounting
      const std::uint64_t r0 = rom.root(0);
      if (r0 == 0) {
        // Rolled back: the other roots must have rolled back with it.
        EXPECT_EQ(rom.root(1), 0u);
        EXPECT_EQ(rom.root(2), 0u);
        EXPECT_EQ(rom.allocated_bytes(), 0u);
        return;
      }
      EXPECT_EQ(rom.read<std::uint64_t>(r0), kMark + 0);
      EXPECT_EQ(rom.read<std::uint64_t>(rom.root(1)), kMark + 100);
      EXPECT_EQ(rom.read<std::uint64_t>(rom.root(2)), kMark + 101);
    });
  };

  const CrashSweepReport report = pm::sweep_crash_points(dev_, workload, verify);
  EXPECT_TRUE(report.exhaustive());
  EXPECT_EQ(report.points, 2 * report.workload_ops.total());
  EXPECT_EQ(report.crashes, report.points);
}

// --- Abort-path regression tests (satellite: torn-transaction abort) ---------

TEST_F(CrashSweepTest, ExceptionMidTransactionRollsBackAndStaysUsable) {
  Romulus rom(dev_, 0, kMain, PwbPolicy::clflushopt_sfence());
  std::size_t off = 0;
  rom.run_transaction([&] {
    off = rom.pmalloc(256);
    rom.tx_assign(off, std::uint64_t{111});
    rom.set_root(0, off);
  });

  // A workload exception mid-transaction must roll main back and restore
  // the header to IDLE — not leave MUTATING/torn state for the next reader.
  EXPECT_THROW(rom.run_transaction([&] {
                 rom.tx_assign(off, std::uint64_t{222});
                 const std::size_t leak = rom.pmalloc(512);
                 rom.set_root(1, leak);
                 throw MlError("workload failed mid-transaction");
               }),
               MlError);

  EXPECT_FALSE(rom.in_transaction());
  EXPECT_EQ(rom.header_state(), Romulus::State::kIdle);
  rom.validate_allocator();
  EXPECT_EQ(rom.read<std::uint64_t>(off), 111u);  // rolled back to pre-tx
  EXPECT_EQ(rom.root(1), 0u);                     // allocation rolled back

  // The region is immediately usable for the next transaction.
  rom.run_transaction([&] { rom.tx_assign(off, std::uint64_t{333}); });
  EXPECT_EQ(rom.read<std::uint64_t>(off), 333u);

  // And the rollback itself is durable: a crash right after the abort must
  // not resurrect the aborted writes.
  EXPECT_THROW(
      rom.run_transaction([&] {
        rom.tx_assign(off, std::uint64_t{444});
        throw MlError("again");
      }),
      MlError);
  dev_.crash(pm::PmDevice::CrashOutcome::kDropAll);
  Romulus recovered(dev_, 0, kMain, PwbPolicy::clflushopt_sfence());
  EXPECT_EQ(recovered.read<std::uint64_t>(off), 333u);
}

TEST_F(CrashSweepTest, RangeCheckRejectsOverflowingStores) {
  Romulus rom(dev_, 0, kMain, PwbPolicy::clflushopt_sfence());
  const std::uint64_t v = 1;
  rom.begin_transaction();
  // offset + len would wrap std::size_t: must throw, not pass the check.
  EXPECT_THROW(rom.tx_store(SIZE_MAX - 4, &v, sizeof(v)), PmError);
  EXPECT_THROW(rom.tx_store(kMain - 4, &v, sizeof(v)), PmError);
  EXPECT_THROW((void)rom.pmalloc(SIZE_MAX - 8), PmError);
  rom.end_transaction();
  EXPECT_EQ(rom.header_state(), Romulus::State::kIdle);
}

// --- MirrorModel sweep --------------------------------------------------------

class MirrorSweepTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kMirrorMain = 1024 * 1024;

  MirrorSweepTest() : platform_(MachineProfile::sgx_emlpm(), region_bytes()) {
    Romulus rom(platform_.pm(), 0, kMirrorMain, PwbPolicy::clflushopt_sfence(),
                /*format=*/true);
  }

  static std::size_t region_bytes() {
    return Romulus::region_bytes(kMirrorMain);
  }

  crypto::AesGcm gcm() const {
    Bytes key(16);
    Rng(77).fill(key.data(), key.size());
    return crypto::AesGcm(key);
  }

  ml::Network net() {
    Rng rng(5);
    return ml::build_network(ml::make_cnn_config(2, 4, 8), rng);
  }

  Platform platform_;
};

TEST_F(MirrorSweepTest, AllocSweepNeverCorruptsRegion) {
  ml::Network model = net();
  const auto workload = [&] {
    Romulus rom(platform_.pm(), 0, kMirrorMain, PwbPolicy::clflushopt_sfence());
    MirrorModel mirror(rom, platform_.enclave(), gcm());
    mirror.alloc(model);
  };
  const auto verify = [&] {
    Romulus rom(platform_.pm(), 0, kMirrorMain, PwbPolicy::clflushopt_sfence());
    EXPECT_EQ(rom.header_state(), Romulus::State::kIdle);
    rom.validate_allocator();
    MirrorModel mirror(rom, platform_.enclave(), gcm());
    // Either the alloc committed atomically (mirror exists, iteration 0, no
    // sealed payload yet) or it rolled back (no mirror, empty heap).
    if (mirror.exists()) {
      EXPECT_EQ(mirror.iteration(), 0u);
      EXPECT_GT(rom.allocated_bytes(), 0u);
    } else {
      EXPECT_EQ(rom.allocated_bytes(), 0u);
    }
  };

  const CrashSweepReport report =
      pm::sweep_crash_points(platform_.pm(), workload, verify);
  EXPECT_TRUE(report.exhaustive());
  EXPECT_EQ(report.crashes, report.points);
  EXPECT_EQ(report.points, 2 * report.workload_ops.total());
}

TEST_F(MirrorSweepTest, MirrorOutSweepAuthenticatesAtPreOrPostIteration) {
  ml::Network model = net();
  {
    // Committed baseline: mirror allocated and sealed at iteration 1. The
    // sweep snapshots this image, so every crash lands inside the
    // iteration-2 mirror_out.
    Romulus rom(platform_.pm(), 0, kMirrorMain, PwbPolicy::clflushopt_sfence());
    MirrorModel mirror(rom, platform_.enclave(), gcm());
    mirror.alloc(model);
    mirror.mirror_out(model, 1);
  }

  const auto workload = [&] {
    Romulus rom(platform_.pm(), 0, kMirrorMain, PwbPolicy::clflushopt_sfence());
    MirrorModel mirror(rom, platform_.enclave(), gcm());
    mirror.mirror_out(model, 2);
  };
  const auto verify = [&] {
    Romulus rom(platform_.pm(), 0, kMirrorMain, PwbPolicy::clflushopt_sfence());
    EXPECT_EQ(rom.header_state(), Romulus::State::kIdle);
    rom.validate_allocator();
    MirrorModel mirror(rom, platform_.enclave(), gcm());
    ASSERT_TRUE(mirror.exists());
    // The paper's core claim: after recovery the mirror authenticates as a
    // whole at exactly the pre- or post-transaction iteration — never a mix
    // of old and new sealed buffers.
    const std::uint64_t iter = mirror.verify_integrity(model);
    EXPECT_TRUE(iter == 1 || iter == 2) << "recovered at iteration " << iter;
  };

  const CrashSweepReport report =
      pm::sweep_crash_points(platform_.pm(), workload, verify);
  EXPECT_TRUE(report.exhaustive());
  EXPECT_GT(report.workload_ops.stores, 0u);
  EXPECT_GT(report.workload_ops.fences, 0u);
  EXPECT_EQ(report.crashes, report.points);
  EXPECT_EQ(report.points, 2 * report.workload_ops.total());
}

TEST_F(MirrorSweepTest, SweepOptionsStrideAndCap) {
  ml::Network model = net();
  {
    Romulus rom(platform_.pm(), 0, kMirrorMain, PwbPolicy::clflushopt_sfence());
    MirrorModel mirror(rom, platform_.enclave(), gcm());
    mirror.alloc(model);
    mirror.mirror_out(model, 1);
  }
  const auto workload = [&] {
    Romulus rom(platform_.pm(), 0, kMirrorMain, PwbPolicy::clflushopt_sfence());
    MirrorModel mirror(rom, platform_.enclave(), gcm());
    mirror.mirror_out(model, 2);
  };
  const auto verify = [&] {
    Romulus rom(platform_.pm(), 0, kMirrorMain, PwbPolicy::clflushopt_sfence());
    EXPECT_EQ(rom.header_state(), Romulus::State::kIdle);
  };

  CrashSweepOptions opts;
  opts.sweep_drop_all = false;  // persist-all only
  opts.stride = 3;
  opts.max_points = 4;
  const CrashSweepReport report =
      pm::sweep_crash_points(platform_.pm(), workload, verify, opts);
  EXPECT_TRUE(report.truncated);
  EXPECT_FALSE(report.exhaustive());
  EXPECT_EQ(report.points, 4u);
  EXPECT_EQ(report.crashes, 4u);
}

}  // namespace
}  // namespace plinius
