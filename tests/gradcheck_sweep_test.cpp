// Parameterized numerical-gradient sweep: every convolutional configuration
// (kernel size, stride, padding, batch-norm, activation) must produce
// analytic gradients matching central finite differences. This is the
// property that keeps every Fig. 8-10 learning curve trustworthy.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "common/rng.h"
#include "ml/connected_layer.h"
#include "ml/conv_layer.h"
#include "ml/network.h"
#include "ml/softmax_layer.h"

namespace plinius::ml {
namespace {

struct SweepCase {
  std::size_t ksize;
  std::size_t stride;
  std::size_t pad;
  bool batch_normalize;
  Activation activation;
};

class ConvGradSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ConvGradSweep, AnalyticMatchesNumeric) {
  const SweepCase& c = GetParam();
  constexpr std::size_t kBatch = 3;
  const Shape input{2, 8, 8};

  auto build = [&]() {
    Rng rng(17);
    auto net = std::make_unique<Network>(input, SgdParams{0.0f, 0.0f, 0.0f});
    ConvConfig cc;
    cc.filters = 4;
    cc.ksize = c.ksize;
    cc.stride = c.stride;
    cc.pad = c.pad;
    cc.batch_normalize = c.batch_normalize;
    cc.activation = c.activation;
    net->add(std::make_unique<ConvLayer>(input, cc, rng));
    const Shape mid = net->next_input_shape();
    ConnectedConfig fc;
    fc.outputs = 5;
    fc.activation = Activation::kTanh;
    net->add(std::make_unique<ConnectedLayer>(mid, fc, rng));
    net->add(std::make_unique<SoftmaxLayer>(Shape{5, 1, 1}));
    return net;
  };

  Rng data_rng(23);
  std::vector<float> x(kBatch * input.size()), y(kBatch * 5, 0.0f);
  for (auto& v : x) v = data_rng.normal();
  for (std::size_t b = 0; b < kBatch; ++b) y[b * 5 + data_rng.below(5)] = 1.0f;

  auto train_loss = [&](Network& net) {
    net.forward(x.data(), kBatch, /*train=*/true);
    auto* sm = dynamic_cast<SoftmaxLayer*>(&net.layer(net.num_layers() - 1));
    return sm->loss_and_delta(y.data(), kBatch);
  };

  // Probe a handful of conv parameters.
  struct Probe {
    std::size_t buffer, index;
  };
  std::vector<Probe> probes = {{0, 0}, {0, 7}, {1, 2}};
  if (c.batch_normalize) probes.push_back({2, 1});  // a scale

  for (const Probe& p : probes) {
    // Analytic: one zero-lr train_batch accumulates the batch gradient; a
    // tiny-lr step reveals it through the parameter delta.
    auto net = build();
    (void)net->train_batch(x.data(), y.data(), kBatch);  // lr = 0
    const float before = net->layer(0).parameters()[p.buffer].values[p.index];
    net->hyper() = SgdParams{1e-3f, 0.0f, 0.0f};
    (void)net->train_batch(x.data(), y.data(), kBatch);
    const float after = net->layer(0).parameters()[p.buffer].values[p.index];
    const float analytic_neg = (after - before) / 1e-3f;  // mean negative grad

    // Numeric: central difference at the post-first-step state.
    auto num = build();
    num->hyper() = SgdParams{0.0f, 0.0f, 0.0f};
    (void)num->train_batch(x.data(), y.data(), kBatch);
    auto bufs = num->layer(0).parameters();
    float* target = &bufs[p.buffer].values[p.index];
    const float eps = 5e-3f;
    const float saved = *target;
    *target = saved + eps;
    const float lp = train_loss(*num);
    *target = saved - eps;
    const float lm = train_loss(*num);
    *target = saved;
    const float numeric = (lp - lm) / (2 * eps);

    EXPECT_NEAR(analytic_neg, -numeric, 6e-2f * std::max(1.0f, std::abs(numeric)))
        << "k=" << c.ksize << " s=" << c.stride << " p=" << c.pad
        << " bn=" << c.batch_normalize << " act=" << activation_name(c.activation)
        << " buffer=" << p.buffer << " index=" << p.index;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ConvGradSweep,
    ::testing::Values(SweepCase{3, 1, 1, false, Activation::kTanh},
                      SweepCase{3, 1, 1, true, Activation::kTanh},
                      SweepCase{3, 2, 1, false, Activation::kTanh},
                      SweepCase{3, 2, 1, true, Activation::kTanh},
                      SweepCase{5, 1, 2, false, Activation::kTanh},
                      SweepCase{5, 2, 2, true, Activation::kTanh},
                      SweepCase{1, 1, 0, false, Activation::kTanh},
                      SweepCase{1, 1, 0, true, Activation::kTanh},
                      SweepCase{3, 1, 0, false, Activation::kTanh},
                      SweepCase{3, 1, 1, true, Activation::kLogistic},
                      SweepCase{3, 1, 1, false, Activation::kLogistic},
                      SweepCase{4, 2, 1, true, Activation::kTanh}));

}  // namespace
}  // namespace plinius::ml
