#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "ml/config.h"
#include "ml/synth_digits.h"
#include "plinius/checkpoint.h"
#include "plinius/mirror.h"
#include "plinius/platform.h"
#include "plinius/pm_data.h"
#include "plinius/trainer.h"
#include "romulus/romulus.h"

namespace plinius {
namespace {

ml::Dataset tiny_dataset(std::size_t rows = 64) {
  ml::SynthDigitsOptions opt;
  opt.train_count = rows;
  opt.test_count = 1;
  return make_synth_digits(opt).train;
}

ml::ModelConfig tiny_config() { return ml::make_cnn_config(2, 4, 8); }

crypto::AesGcm test_gcm() {
  Bytes key(16);
  Rng(77).fill(key.data(), key.size());
  return crypto::AesGcm(key);
}

class PliniusFixture : public ::testing::Test {
 protected:
  PliniusFixture()
      : platform_(MachineProfile::sgx_emlpm(), 32 * 1024 * 1024),
        rom_(platform_.pm(), 0, 15 * 1024 * 1024,
             romulus::PwbPolicy::clflushopt_sfence(), true) {}

  Platform platform_;
  romulus::Romulus rom_;
};

// --- Platform ----------------------------------------------------------------

TEST(Platform, ProfilesMatchPaperServers) {
  const auto a = MachineProfile::sgx_emlpm();
  EXPECT_TRUE(a.sgx.real_sgx);
  EXPECT_NEAR(a.sgx.cpu_ghz, 3.8, 1e-9);

  const auto b = MachineProfile::emlsgx_pm();
  EXPECT_FALSE(b.sgx.real_sgx);
  EXPECT_NEAR(b.sgx.cpu_ghz, 2.5, 1e-9);
  // emlSGX-PM has real Optane: slower PM writes than the Ramdisk-PM machine.
  EXPECT_LT(b.pm.flush_drain_gib_s, a.pm.flush_drain_gib_s);
}

TEST(Platform, ComputeChargeAdvancesClock) {
  Platform p(MachineProfile::emlsgx_pm(), 1024 * 1024);
  const auto t0 = p.clock().now();
  p.charge_compute(36e9);  // exactly one second of MACs
  EXPECT_NEAR(p.clock().now() - t0, 1e9, 1.0);
}

// --- MirrorModel --------------------------------------------------------------

TEST_F(PliniusFixture, AllocAndRoundTrip) {
  Rng rng(1);
  ml::Network net = ml::build_network(tiny_config(), rng);
  MirrorModel mirror(rom_, platform_.enclave(), test_gcm());

  EXPECT_FALSE(mirror.exists());
  EXPECT_THROW((void)mirror.iteration(), Error);
  mirror.alloc(net);
  EXPECT_TRUE(mirror.exists());
  EXPECT_EQ(mirror.iteration(), 0u);
  EXPECT_THROW(mirror.alloc(net), PmError);

  net.set_iterations(5);
  mirror.mirror_out(net, 5);
  EXPECT_EQ(mirror.iteration(), 5u);

  // Restore into a differently initialized network: weights must match.
  Rng rng2(999);
  ml::Network other = ml::build_network(tiny_config(), rng2);
  MirrorModel mirror2(rom_, platform_.enclave(), test_gcm());
  EXPECT_EQ(mirror2.mirror_in(other), 5u);
  EXPECT_EQ(other.iterations(), 5u);
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    auto a = net.layer(l).parameters();
    auto b = other.layer(l).parameters();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      for (std::size_t j = 0; j < a[i].values.size(); ++j) {
        ASSERT_EQ(a[i].values[j], b[i].values[j])
            << "layer " << l << " buffer " << i << " elem " << j;
      }
    }
  }
}

TEST_F(PliniusFixture, MirrorInWrongKeyFailsAuthentication) {
  Rng rng(1);
  ml::Network net = ml::build_network(tiny_config(), rng);
  MirrorModel mirror(rom_, platform_.enclave(), test_gcm());
  mirror.alloc(net);
  mirror.mirror_out(net, 1);

  Bytes wrong_key(16, 0x42);
  MirrorModel wrong(rom_, platform_.enclave(), crypto::AesGcm(wrong_key));
  EXPECT_THROW((void)wrong.mirror_in(net), CryptoError);
}

TEST_F(PliniusFixture, TamperedPmMirrorDetected) {
  Rng rng(1);
  ml::Network net = ml::build_network(tiny_config(), rng);
  MirrorModel mirror(rom_, platform_.enclave(), test_gcm());
  mirror.alloc(net);
  mirror.mirror_out(net, 1);

  // Adversary with physical PM access flips bits across the heap area —
  // some land inside the sealed weight buffers.
  for (std::size_t off = 1024; off < 64 * 1024; off += 512) {
    rom_.main_base()[off] ^= 0x01;
  }
  EXPECT_THROW((void)mirror.mirror_in(net), CryptoError);
}

TEST_F(PliniusFixture, MirrorLayoutMismatchRejected) {
  Rng rng(1);
  ml::Network small = ml::build_network(tiny_config(), rng);
  MirrorModel mirror(rom_, platform_.enclave(), test_gcm());
  mirror.alloc(small);
  ml::Network bigger = ml::build_network(ml::make_cnn_config(3, 4, 8), rng);
  EXPECT_THROW(mirror.mirror_out(bigger, 1), MlError);
  EXPECT_THROW((void)mirror.mirror_in(bigger), MlError);
}

TEST_F(PliniusFixture, EncryptionMetadataIs28BytesPerBuffer) {
  Rng rng(1);
  ml::Network net = ml::build_network(tiny_config(), rng);
  MirrorModel mirror(rom_, platform_.enclave(), test_gcm());
  mirror.alloc(net);

  std::size_t buffers = 0;
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    buffers += net.layer(l).parameters().size();
  }
  EXPECT_EQ(mirror.encryption_metadata_bytes(), buffers * 28);
  // A BN conv layer contributes exactly the paper's 140 B (5 x 28).
  EXPECT_EQ(net.layer(0).parameters().size() * 28, 140u);
}

TEST_F(PliniusFixture, MirrorStatsBreakdownPopulated) {
  Rng rng(1);
  ml::Network net = ml::build_network(tiny_config(), rng);
  MirrorModel mirror(rom_, platform_.enclave(), test_gcm());
  mirror.alloc(net);
  mirror.reset_stats();
  mirror.mirror_out(net, 1);
  (void)mirror.mirror_in(net);
  const auto& s = mirror.stats();
  EXPECT_EQ(s.saves, 1u);
  EXPECT_EQ(s.restores, 1u);
  EXPECT_GT(s.encrypt_ns, 0.0);
  EXPECT_GT(s.write_ns, 0.0);
  EXPECT_GT(s.read_ns, 0.0);
  EXPECT_GT(s.decrypt_ns, 0.0);
}

TEST_F(PliniusFixture, CrashDuringMirrorOutRecoversPreviousMirror) {
  Rng rng(1);
  ml::Network net = ml::build_network(tiny_config(), rng);
  {
    MirrorModel mirror(rom_, platform_.enclave(), test_gcm());
    mirror.alloc(net);
    mirror.mirror_out(net, 7);
  }

  // Mutate weights, then crash the device mid-save: leave the Romulus
  // transaction un-ended by injecting the crash below the API (tx opened,
  // device crashed, process "dies").
  auto params = net.layer(0).parameters();
  const float before = params[0].values[0];
  params[0].values[0] = before + 100.0f;

  rom_.begin_transaction();
  rom_.tx_assign(rom_.root(MirrorModel::kRootSlot) + 8, std::uint64_t{8});  // iter=8
  rom_.abandon_transaction();
  platform_.pm().crash();

  // New process: recovery + mirror-in must yield the *previous* consistent
  // mirror (iteration 7 with the old weights).
  romulus::Romulus recovered(platform_.pm(), 0, 15 * 1024 * 1024,
                             romulus::PwbPolicy::clflushopt_sfence());
  Rng rng2(2);
  ml::Network resumed = ml::build_network(tiny_config(), rng2);
  MirrorModel mirror(recovered, platform_.enclave(), test_gcm());
  EXPECT_EQ(mirror.mirror_in(resumed), 7u);
  EXPECT_EQ(resumed.layer(0).parameters()[0].values[0], before);
}

// --- PmDataStore -----------------------------------------------------------------

TEST_F(PliniusFixture, DataLoadAndSample) {
  const auto data = tiny_dataset(32);
  PmDataStore store(rom_, platform_.enclave(), test_gcm());
  EXPECT_FALSE(store.exists());
  store.load(data);
  EXPECT_TRUE(store.exists());
  EXPECT_THROW(store.load(data), PmError);
  EXPECT_EQ(store.rows(), 32u);
  EXPECT_EQ(store.x_cols(), ml::kDigitPixels);
  EXPECT_EQ(store.y_cols(), ml::kDigitClasses);
  EXPECT_TRUE(store.encrypted());

  // Record 5 decrypts to exactly its source row.
  std::vector<float> x(ml::kDigitPixels), y(ml::kDigitClasses);
  store.read_record(5, x.data(), y.data());
  for (std::size_t i = 0; i < x.size(); ++i) ASSERT_EQ(x[i], data.x.row(5)[i]);
  for (std::size_t i = 0; i < y.size(); ++i) ASSERT_EQ(y[i], data.y.row(5)[i]);

  EXPECT_THROW(store.read_record(32, x.data(), y.data()), PmError);

  Rng rng(3);
  std::vector<float> bx(4 * ml::kDigitPixels), by(4 * ml::kDigitClasses);
  store.sample_batch(4, rng, bx.data(), by.data());
  EXPECT_EQ(store.stats().batches, 1u);
  EXPECT_EQ(store.stats().records, 5u);  // 1 read_record + 4 batch
}

TEST_F(PliniusFixture, DataSurvivesCrash) {
  const auto data = tiny_dataset(16);
  {
    PmDataStore store(rom_, platform_.enclave(), test_gcm());
    store.load(data);
  }
  platform_.pm().crash();
  romulus::Romulus recovered(platform_.pm(), 0, 15 * 1024 * 1024,
                             romulus::PwbPolicy::clflushopt_sfence());
  PmDataStore store(recovered, platform_.enclave(), test_gcm());
  ASSERT_TRUE(store.exists());
  std::vector<float> x(ml::kDigitPixels), y(ml::kDigitClasses);
  store.read_record(7, x.data(), y.data());
  for (std::size_t i = 0; i < x.size(); ++i) ASSERT_EQ(x[i], data.x.row(7)[i]);
}

TEST_F(PliniusFixture, TamperedPmDataDetected) {
  const auto data = tiny_dataset(8);
  PmDataStore store(rom_, platform_.enclave(), test_gcm());
  store.load(data);
  // Flip a bit somewhere in the record area.
  rom_.main_base()[6000] ^= 0x40;
  std::vector<float> x(ml::kDigitPixels), y(ml::kDigitClasses);
  bool tamper_detected = false;
  for (std::size_t r = 0; r < 8; ++r) {
    try {
      store.read_record(r, x.data(), y.data());
    } catch (const CryptoError&) {
      tamper_detected = true;
    }
  }
  EXPECT_TRUE(tamper_detected);
}

TEST_F(PliniusFixture, PlaintextDataModeSkipsCrypto) {
  const auto data = tiny_dataset(16);
  PmDataStore store(rom_, platform_.enclave(), test_gcm(), /*encrypted=*/false);
  store.load(data);
  EXPECT_FALSE(store.encrypted());
  std::vector<float> x(ml::kDigitPixels), y(ml::kDigitClasses);
  store.read_record(3, x.data(), y.data());
  for (std::size_t i = 0; i < x.size(); ++i) ASSERT_EQ(x[i], data.x.row(3)[i]);
}

TEST_F(PliniusFixture, EncryptedBatchesCostMoreThanPlaintext) {
  const auto data = tiny_dataset(32);
  PmDataStore enc(rom_, platform_.enclave(), test_gcm(), true);
  enc.load(data);
  Rng rng(1);
  std::vector<float> bx(8 * ml::kDigitPixels), by(8 * ml::kDigitClasses);
  enc.sample_batch(8, rng, bx.data(), by.data());
  const auto enc_ns = enc.stats().decrypt_ns;

  Platform p2(MachineProfile::sgx_emlpm(), 32 * 1024 * 1024);
  romulus::Romulus rom2(p2.pm(), 0, 15 * 1024 * 1024,
                        romulus::PwbPolicy::clflushopt_sfence(), true);
  PmDataStore plain(rom2, p2.enclave(), test_gcm(), false);
  plain.load(data);
  Rng rng2(1);
  plain.sample_batch(8, rng2, bx.data(), by.data());
  EXPECT_GT(enc_ns, plain.stats().decrypt_ns);
}

// --- SsdCheckpointer ---------------------------------------------------------------

TEST_F(PliniusFixture, CheckpointSaveRestoreRoundTrip) {
  Rng rng(1);
  ml::Network net = ml::build_network(tiny_config(), rng);
  net.set_iterations(9);
  SsdCheckpointer ckpt(platform_.ssd(), platform_.enclave(), test_gcm());
  EXPECT_FALSE(ckpt.exists());
  EXPECT_THROW((void)ckpt.restore(net), StorageError);

  ckpt.save(net);
  EXPECT_TRUE(ckpt.exists());

  Rng rng2(2);
  ml::Network other = ml::build_network(tiny_config(), rng2);
  EXPECT_EQ(ckpt.restore(other), 9u);
  const auto a = net.layer(0).parameters()[0];
  const auto b = other.layer(0).parameters()[0];
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    ASSERT_EQ(a.values[i], b.values[i]);
  }

  const auto& s = ckpt.stats();
  EXPECT_GT(s.encrypt_ns, 0.0);
  EXPECT_GT(s.write_ns, 0.0);
  EXPECT_GT(s.read_ns, 0.0);
  EXPECT_GT(s.decrypt_ns, 0.0);

  ckpt.remove();
  EXPECT_FALSE(ckpt.exists());
}

TEST_F(PliniusFixture, TamperedCheckpointDetected) {
  Rng rng(1);
  ml::Network net = ml::build_network(tiny_config(), rng);
  SsdCheckpointer ckpt(platform_.ssd(), platform_.enclave(), test_gcm());
  ckpt.save(net);
  auto& f = platform_.ssd().open("model.ckpt");
  Bytes byte(1);
  f.pread(100, byte);
  byte[0] ^= 0xFF;
  f.pwrite(100, byte);
  EXPECT_THROW((void)ckpt.restore(net), CryptoError);
}

TEST_F(PliniusFixture, MirroringFasterThanSsdCheckpointing) {
  // The headline claim, at unit-test scale.
  Rng rng(1);
  ml::Network net = ml::build_network(tiny_config(), rng);
  MirrorModel mirror(rom_, platform_.enclave(), test_gcm());
  mirror.alloc(net);
  SsdCheckpointer ckpt(platform_.ssd(), platform_.enclave(), test_gcm());

  mirror.reset_stats();
  mirror.mirror_out(net, 1);
  const auto mirror_save = mirror.stats().encrypt_ns + mirror.stats().write_ns;
  ckpt.save(net);
  const auto ssd_save = ckpt.stats().encrypt_ns + ckpt.stats().write_ns;
  EXPECT_GT(ssd_save, mirror_save);

  (void)mirror.mirror_in(net);
  const auto mirror_restore = mirror.stats().read_ns + mirror.stats().decrypt_ns;
  platform_.ssd().drop_caches();
  (void)ckpt.restore(net);
  const auto ssd_restore = ckpt.stats().read_ns + ckpt.stats().decrypt_ns;
  EXPECT_GT(ssd_restore, mirror_restore);
}

// --- Trainer ----------------------------------------------------------------------

class TrainerTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kPmBytes = 48 * 1024 * 1024;
};

TEST_F(TrainerTest, TrainsAndResumesAfterCrash) {
  Platform platform(MachineProfile::emlsgx_pm(), kPmBytes);
  const auto config = tiny_config();
  const auto data = tiny_dataset(128);

  float loss_at_crash = 0;
  {
    Trainer trainer(platform, config, TrainerOptions{});
    trainer.load_dataset(data);
    EXPECT_EQ(trainer.resume_or_init(), 0u);
    try {
      trainer.train(100, [&](std::uint64_t iter, float loss) {
        if (iter == 20) {
          loss_at_crash = loss;
          throw SimulatedCrash("kill at iteration 20");
        }
      });
      FAIL() << "crash did not propagate";
    } catch (const SimulatedCrash&) {
    }
  }
  platform.pm().crash();

  // New "process": resumes at iteration 20, not 0.
  Trainer resumed(platform, config, TrainerOptions{});
  resumed.load_dataset(data);  // no-op: data already in PM
  EXPECT_EQ(resumed.resume_or_init(), 20u);
  const float final_loss = resumed.train(60);
  EXPECT_EQ(resumed.network().iterations(), 60u);
  EXPECT_TRUE(std::isfinite(final_loss));
}

TEST_F(TrainerTest, NonResilientBackendRestartsFromScratch) {
  Platform platform(MachineProfile::emlsgx_pm(), kPmBytes);
  TrainerOptions opt;
  opt.backend = CheckpointBackend::kNone;
  const auto config = tiny_config();
  const auto data = tiny_dataset(128);
  {
    Trainer trainer(platform, config, opt);
    trainer.load_dataset(data);
    (void)trainer.train(10);
  }
  Trainer restarted(platform, config, opt);
  restarted.load_dataset(data);
  EXPECT_EQ(restarted.resume_or_init(), 0u);
}

TEST_F(TrainerTest, SsdBackendResumesToo) {
  Platform platform(MachineProfile::sgx_emlpm(), kPmBytes);
  TrainerOptions opt;
  opt.backend = CheckpointBackend::kSsd;
  const auto config = tiny_config();
  const auto data = tiny_dataset(128);
  {
    Trainer trainer(platform, config, opt);
    trainer.load_dataset(data);
    (void)trainer.train(8);
  }
  Trainer resumed(platform, config, opt);
  resumed.load_dataset(data);
  EXPECT_EQ(resumed.resume_or_init(), 8u);
}

TEST_F(TrainerTest, MirrorFrequencyReducesSaves) {
  Platform platform(MachineProfile::emlsgx_pm(), kPmBytes);
  TrainerOptions opt;
  opt.mirror_every = 5;
  Trainer trainer(platform, tiny_config(), opt);
  trainer.load_dataset(tiny_dataset(128));
  (void)trainer.train(10);
  EXPECT_EQ(trainer.mirror().stats().saves, 2u);
}

TEST_F(TrainerTest, KeyIsSealedAndReusedAcrossRestarts) {
  Platform platform(MachineProfile::emlsgx_pm(), kPmBytes);
  Bytes key1;
  {
    Trainer t(platform, tiny_config(), TrainerOptions{});
    key1 = t.data_key();
  }
  Trainer t2(platform, tiny_config(), TrainerOptions{});
  EXPECT_EQ(t2.data_key(), key1);  // unsealed, not regenerated
}

TEST_F(TrainerTest, TrainingChargesSimulatedTime) {
  Platform platform(MachineProfile::emlsgx_pm(), kPmBytes);
  Trainer trainer(platform, tiny_config(), TrainerOptions{});
  trainer.load_dataset(tiny_dataset(128));
  const auto t0 = platform.clock().now();
  (void)trainer.train(3);
  EXPECT_GT(platform.clock().now(), t0);
  EXPECT_EQ(trainer.loss_history().size(), 3u);
}

TEST_F(TrainerTest, AugmentedTrainingStaysFiniteAndLearns) {
  Platform platform(MachineProfile::emlsgx_pm(), kPmBytes);
  TrainerOptions opt;
  opt.augment = ml::AugmentOptions{};  // shifts + jitter + noise in-enclave
  Trainer trainer(platform, tiny_config(), opt);
  trainer.load_dataset(tiny_dataset(256));
  float first = 0, last = 0;
  (void)trainer.train(40, [&](std::uint64_t iter, float loss) {
    ASSERT_TRUE(std::isfinite(loss));
    if (iter == 1) first = loss;
    if (iter == 40) last = loss;
  });
  EXPECT_LT(last, first);
}

TEST_F(TrainerTest, TrainWithoutDataThrows) {
  Platform platform(MachineProfile::emlsgx_pm(), kPmBytes);
  Trainer trainer(platform, tiny_config(), TrainerOptions{});
  EXPECT_THROW((void)trainer.train(1), Error);
}

}  // namespace
}  // namespace plinius
