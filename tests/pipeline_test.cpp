// Double-buffered pipelined mirroring: the async ChargeStream substrate,
// the begin/complete async save split, result identity with the serial
// path, overlap provability from span rollups, the attempt/completion
// counter contract, and crash recovery over the in-flight-seal window.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "ml/config.h"
#include "ml/serialize.h"
#include "ml/synth_digits.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "plinius/mirror.h"
#include "plinius/platform.h"
#include "plinius/trainer.h"
#include "sgx/enclave.h"

namespace plinius {
namespace {

ml::Dataset tiny_dataset(std::size_t rows = 64) {
  ml::SynthDigitsOptions opt;
  opt.train_count = rows;
  opt.test_count = 1;
  return make_synth_digits(opt).train;
}

ml::ModelConfig tiny_config() { return ml::make_cnn_config(2, 4, 8); }

// --- ChargeStream ------------------------------------------------------------

class ChargeStreamTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kPmBytes = 8 * 1024 * 1024;
};

TEST_F(ChargeStreamTest, OpenStreamTracksBackgroundLanesAndReleasesOnDestruction) {
  Platform p(MachineProfile::emlsgx_pm(), kPmBytes);
  auto& enclave = p.enclave();
  enclave.set_tcs_count(4);
  EXPECT_EQ(enclave.background_lanes(), 0u);
  {
    const sgx::ChargeStream stream = enclave.open_stream(2);
    EXPECT_EQ(stream.lanes(), 2u);
    EXPECT_EQ(enclave.background_lanes(), 2u);
    // Background lanes are additional contexts — the foreground pool is
    // untouched.
    EXPECT_EQ(enclave.tcs_count(), 4u);
  }
  EXPECT_EQ(enclave.background_lanes(), 0u);
}

TEST_F(ChargeStreamTest, ZeroLaneRequestClampsToOne) {
  Platform p(MachineProfile::emlsgx_pm(), kPmBytes);
  const sgx::ChargeStream stream = p.enclave().open_stream(0);
  EXPECT_EQ(stream.lanes(), 1u);
  EXPECT_EQ(p.enclave().background_lanes(), 1u);
}

TEST_F(ChargeStreamTest, SingleTcsEnclaveStillOverlapsOnItsSealLane) {
  Platform p(MachineProfile::emlsgx_pm(), kPmBytes);
  auto& enclave = p.enclave();  // tcs_count == 1 by default
  sgx::ChargeStream stream = enclave.open_stream(1);

  const sim::Nanos costs[] = {1000.0, 2000.0};
  const sim::Nanos t0 = p.clock().now();
  const auto window = stream.submit(costs);
  // The seal lane is a dedicated extra context: nothing lands on the
  // foreground clock until a join.
  EXPECT_DOUBLE_EQ(p.clock().now(), t0);
  EXPECT_DOUBLE_EQ(window.duration(), 3000.0);  // one lane: serial sum
  EXPECT_DOUBLE_EQ(stream.join(), 3000.0);
  EXPECT_DOUBLE_EQ(p.clock().now() - t0, 3000.0);
}

TEST_F(ChargeStreamTest, SubmitBooksWithoutAdvancingAndJoinChargesOnlyStall) {
  Platform p(MachineProfile::emlsgx_pm(), kPmBytes);
  auto& enclave = p.enclave();
  enclave.set_tcs_count(3);
  sgx::ChargeStream stream = enclave.open_stream(2);

  const sim::Nanos costs[] = {4000.0, 4000.0};  // 2 lanes -> 4000 critical path
  const sim::Nanos t0 = p.clock().now();
  const auto window = stream.submit(costs);
  EXPECT_DOUBLE_EQ(p.clock().now(), t0);  // no foreground charge
  EXPECT_DOUBLE_EQ(window.begin, t0);
  EXPECT_DOUBLE_EQ(window.end, t0 + 4000.0);
  EXPECT_TRUE(stream.busy());

  // Foreground compute hides part of the seal; join pays the remainder.
  p.clock().advance(1500.0);
  EXPECT_DOUBLE_EQ(stream.join(), 2500.0);
  EXPECT_DOUBLE_EQ(p.clock().now(), t0 + 4000.0);
  EXPECT_FALSE(stream.busy());
  // Fully hidden work stalls zero.
  EXPECT_DOUBLE_EQ(stream.join(), 0.0);
  EXPECT_EQ(enclave.stats().stream_submits, 1u);
}

TEST_F(ChargeStreamTest, SubmissionsQueueAfterPendingWork) {
  Platform p(MachineProfile::emlsgx_pm(), kPmBytes);
  auto& enclave = p.enclave();
  enclave.set_tcs_count(2);
  sgx::ChargeStream stream = enclave.open_stream(1);

  const sim::Nanos costs[] = {1000.0};
  const auto w1 = stream.submit(costs);
  const auto w2 = stream.submit(costs);  // queues behind w1 on the lane
  EXPECT_DOUBLE_EQ(w2.begin, w1.end);
  EXPECT_DOUBLE_EQ(stream.busy_until(), w1.end + 1000.0);
  (void)stream.join();
  EXPECT_DOUBLE_EQ(p.clock().now(), w2.end);
}

TEST_F(ChargeStreamTest, OpenStreamLeavesForegroundParallelPhasesUnthrottled) {
  Platform p(MachineProfile::emlsgx_pm(), kPmBytes);
  auto& enclave = p.enclave();
  enclave.set_tcs_count(4);
  const std::vector<sim::Nanos> costs(4, 1000.0);

  const sim::Nanos t0 = p.clock().now();
  (void)enclave.charge_parallel(costs);  // 4 lanes -> 1000
  EXPECT_DOUBLE_EQ(p.clock().now() - t0, 1000.0);

  const sgx::ChargeStream stream = enclave.open_stream(2);
  const sim::Nanos t1 = p.clock().now();
  (void)enclave.charge_parallel(costs);  // still 4 foreground lanes -> 1000
  EXPECT_DOUBLE_EQ(p.clock().now() - t1, 1000.0);
}

// --- pipelined trainer -------------------------------------------------------

class PipelineTrainerTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kPmBytes = 48 * 1024 * 1024;

  static TrainerOptions pipelined_options() {
    TrainerOptions opt;
    opt.pipeline_mirror = true;
    return opt;
  }
};

TEST_F(PipelineTrainerTest, ResultsBitwiseIdenticalToSerialPath) {
  const auto config = tiny_config();
  const auto data = tiny_dataset(128);

  Platform serial_platform(MachineProfile::emlsgx_pm(), kPmBytes);
  serial_platform.enclave().set_tcs_count(4);
  Trainer serial(serial_platform, config, TrainerOptions{});
  serial.load_dataset(data);
  (void)serial.train(12);

  Platform piped_platform(MachineProfile::emlsgx_pm(), kPmBytes);
  piped_platform.enclave().set_tcs_count(4);
  Trainer piped(piped_platform, config, pipelined_options());
  piped.load_dataset(data);
  (void)piped.train(12);

  // Same weights, same losses, bit for bit: pipelining only moves simulated
  // cost around, never the computation.
  EXPECT_EQ(ml::serialize_weights(serial.network()),
            ml::serialize_weights(piped.network()));
  ASSERT_EQ(serial.loss_history().size(), piped.loss_history().size());
  for (std::size_t i = 0; i < serial.loss_history().size(); ++i) {
    EXPECT_EQ(serial.loss_history()[i], piped.loss_history()[i]) << i;
  }
  // And the same bytes were made durable: both mirrors restore iteration 12.
  EXPECT_EQ(serial.mirror().iteration(), 12u);
  EXPECT_EQ(piped.mirror().iteration(), 12u);
}

TEST_F(PipelineTrainerTest, PipeliningTakesSealOffTheIterationCriticalPath) {
  const auto config = tiny_config();
  const auto data = tiny_dataset(128);

  const auto run = [&](bool pipelined, obs::Tracer& tracer) {
    Platform platform(MachineProfile::emlsgx_pm(), kPmBytes);
    platform.enclave().set_tcs_count(4);
    platform.clock().set_tracer(&tracer);
    TrainerOptions opt;
    opt.pipeline_mirror = pipelined;
    // Seal worker pool as wide as the compute pool: the background sweep
    // then costs what the serial path's charge_parallel did, and the whole
    // of it hides under the next iteration.
    opt.pipeline_lanes = 4;
    Trainer trainer(platform, config, opt);
    trainer.load_dataset(data);
    (void)trainer.train(10);
    const MirrorStats stats = trainer.mirror().stats();
    platform.clock().set_tracer(nullptr);
    return std::make_pair(platform.clock().now(), stats);
  };

  obs::Tracer serial_trace;
  obs::Tracer piped_trace;
  const auto [serial_ns, serial_stats] = run(false, serial_trace);
  const auto [piped_ns, piped_stats] = run(true, piped_trace);

  // On emlSGX-PM (no EPC paging) the mirror seal is pure GCM. Serially it
  // sits inside every train.iteration; pipelined it books on the background
  // lane, so the GCM share attributed under the iteration brackets collapses
  // to the data-batch decrypt alone.
  const obs::CostReport serial_iter = obs::attribute_under(serial_trace, "train.iteration");
  const obs::CostReport piped_iter = obs::attribute_under(piped_trace, "train.iteration");
  EXPECT_LT(piped_iter.ns(obs::Category::kGcm), serial_iter.ns(obs::Category::kGcm));

  // The serial path seals inside the foreground save span; the pipelined
  // stage span contains no GCM at all — the whole sweep moved off the
  // iteration critical path.
  EXPECT_GT(obs::attribute_under(serial_trace, "mirror.save").ns(obs::Category::kGcm),
            0.0);
  EXPECT_DOUBLE_EQ(
      obs::attribute_under(piped_trace, "mirror.save.stage").ns(obs::Category::kGcm),
      0.0);

  // The background seal windows are visible as root brackets on track 1.
  sim::Nanos seal_track_ns = 0;
  std::size_t seal_brackets = 0;
  for (const obs::SpanRecord& rec : piped_trace.spans()) {
    if (rec.category == obs::Category::kPipelineSeal) {
      ++seal_brackets;
      seal_track_ns += rec.duration();
      EXPECT_EQ(rec.track, 1u);
      EXPECT_EQ(rec.parent, 0u);
    }
  }
  EXPECT_EQ(seal_brackets, 10u);  // one bracket per iteration's seal
  EXPECT_DOUBLE_EQ(seal_track_ns, piped_stats.encrypt_ns);

  // Overlap means wall time drops vs the serial baseline, and the stall
  // (unhidden seal remainder) is strictly less than the seal itself.
  EXPECT_LT(piped_ns, serial_ns);
  EXPECT_GT(piped_stats.encrypt_ns, 0.0);
  EXPECT_LT(piped_stats.pipeline_stall_ns, piped_stats.encrypt_ns);
  EXPECT_EQ(serial_stats.pipeline_stall_ns, 0.0);
}

TEST_F(PipelineTrainerTest, AttemptAndCompletionCountersBalanceOnCleanRun) {
  Platform platform(MachineProfile::emlsgx_pm(), kPmBytes);
  platform.enclave().set_tcs_count(4);
  Trainer trainer(platform, tiny_config(), pipelined_options());
  trainer.load_dataset(tiny_dataset(128));
  (void)trainer.train(8);

  const MirrorStats& s = trainer.mirror().stats();
  EXPECT_EQ(s.save_attempts, 8u);
  EXPECT_EQ(s.saves, 8u);
  EXPECT_EQ(s.async_saves, 8u);
  EXPECT_FALSE(trainer.mirror().async_save_pending());
  EXPECT_EQ(platform.enclave().stats().stream_submits, 8u);
  EXPECT_EQ(trainer.last_recovery().tier, RecoveryTier::kNone);
}

TEST_F(PipelineTrainerTest, MirrorEveryStillBoundsDurableLag) {
  Platform platform(MachineProfile::emlsgx_pm(), kPmBytes);
  platform.enclave().set_tcs_count(4);
  TrainerOptions opt = pipelined_options();
  opt.mirror_every = 5;
  Trainer trainer(platform, tiny_config(), opt);
  trainer.load_dataset(tiny_dataset(128));
  (void)trainer.train(10);
  // Mirror points 5 and 10; the loop-exit drain commits the last one.
  EXPECT_EQ(trainer.mirror().stats().saves, 2u);
  EXPECT_EQ(trainer.mirror().iteration(), 10u);
}

TEST_F(PipelineTrainerTest, CheckpointBoundaryDrainsBeforeSsdSave) {
  Platform platform(MachineProfile::emlsgx_pm(), kPmBytes);
  platform.enclave().set_tcs_count(4);
  TrainerOptions opt = pipelined_options();
  opt.ssd_checkpoint_every = 4;
  Trainer trainer(platform, tiny_config(), opt);
  trainer.load_dataset(tiny_dataset(128));
  (void)trainer.train(8);

  // SSD saves at 4 and 8; each one must sit at or behind the PM durable
  // point, so the drain-before-checkpoint leaves no save pending.
  EXPECT_EQ(trainer.checkpointer().stats().saves, 2u);
  EXPECT_FALSE(trainer.mirror().async_save_pending());
  EXPECT_EQ(trainer.mirror().iteration(), 8u);
}

TEST_F(PipelineTrainerTest, SynchronousEntryPointsRefuseWhileSaveInFlight) {
  Platform platform(MachineProfile::emlsgx_pm(), kPmBytes);
  platform.enclave().set_tcs_count(4);
  Rng rng(42);
  ml::Network net = ml::build_network(tiny_config(), rng);

  romulus::Romulus rom(platform.pm(), 0, 14 * 1024 * 1024,
                       romulus::PwbPolicy::clflushopt_sfence(), true);
  Bytes key(16, 0x22);
  MirrorModel mirror(rom, platform.enclave(), crypto::AesGcm(key));
  mirror.alloc(net);

  sgx::ChargeStream stream = platform.enclave().open_stream(1);
  mirror.begin_async_save(net, 1, stream);
  EXPECT_TRUE(mirror.async_save_pending());
  EXPECT_EQ(mirror.pending_iteration(), 1u);
  EXPECT_THROW(mirror.mirror_out(net, 2), Error);
  EXPECT_THROW((void)mirror.mirror_in(net), Error);
  EXPECT_THROW((void)mirror.scrub(net), Error);
  EXPECT_THROW(mirror.dispose(), Error);
  EXPECT_THROW(mirror.begin_async_save(net, 2, stream), Error);

  ASSERT_TRUE(mirror.complete_async_save(stream));
  EXPECT_FALSE(mirror.async_save_pending());
  EXPECT_EQ(mirror.iteration(), 1u);
  // Nothing pending: complete is a no-op that reports it.
  EXPECT_FALSE(mirror.complete_async_save(stream));

  // Abandon models a crash: the durable point stays at the committed save.
  mirror.begin_async_save(net, 2, stream);
  mirror.abandon_async_save();
  EXPECT_FALSE(mirror.async_save_pending());
  EXPECT_EQ(mirror.iteration(), 1u);
}

TEST_F(PipelineTrainerTest, CrashSweepOverInFlightSealWindowRecoversWithLagOne) {
  const auto config = tiny_config();
  const auto data = tiny_dataset(128);
  constexpr std::uint64_t kTarget = 10;

  for (std::uint64_t crash_at = 1; crash_at <= 6; ++crash_at) {
    Platform platform(MachineProfile::emlsgx_pm(), kPmBytes);
    platform.enclave().set_tcs_count(4);
    {
      Trainer trainer(platform, config, pipelined_options());
      trainer.load_dataset(data);
      try {
        trainer.train(kTarget, [&](std::uint64_t iter, float) {
          // At on_iteration(k) the seal of iteration k is still in flight:
          // this models a kill inside the new in-flight-seal window.
          if (iter == crash_at) throw SimulatedCrash("kill mid-pipeline");
        });
        FAIL() << "crash did not propagate (crash_at=" << crash_at << ")";
      } catch (const SimulatedCrash&) {
      }
    }
    platform.pm().crash();

    Trainer resumed(platform, config, pipelined_options());
    resumed.load_dataset(data);
    const std::uint64_t resume = resumed.resume_or_init();
    // Durable point lags the observed iteration by at most the one
    // in-flight save, and never runs ahead of it.
    EXPECT_GE(resume + 1, crash_at) << "crash_at=" << crash_at;
    EXPECT_LE(resume, crash_at) << "crash_at=" << crash_at;
    // A fresh start (crash before any commit) leaves the mirror allocated
    // but not yet sealed, so only verify when a mirror state was restored.
    if (resume > 0) resumed.verify_persistent_state();

    // Training still reaches the target and leaves a durable final mirror.
    (void)resumed.train(kTarget);
    EXPECT_EQ(resumed.mirror().iteration(), kTarget);
    resumed.verify_persistent_state();
  }
}

TEST_F(PipelineTrainerTest, SingleTcsPipelineOverlapsOnItsDedicatedSealLane) {
  // The paper's training configuration is single-threaded; the pipelined
  // design adds the seal worker as an extra enclave thread, so overlap works
  // even at tcs_count == 1.
  Platform platform(MachineProfile::emlsgx_pm(), kPmBytes);
  Trainer trainer(platform, tiny_config(), pipelined_options());
  trainer.load_dataset(tiny_dataset(128));
  (void)trainer.train(6);
  const MirrorStats& s = trainer.mirror().stats();
  EXPECT_EQ(s.saves, 6u);
  EXPECT_EQ(s.async_saves, 6u);
  EXPECT_LE(s.pipeline_stall_ns, s.encrypt_ns);
  EXPECT_EQ(trainer.mirror().iteration(), 6u);
}

}  // namespace
}  // namespace plinius
