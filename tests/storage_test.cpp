#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/error.h"
#include "common/rng.h"
#include "storage/filesystem.h"
#include "storage/fio.h"

namespace plinius::storage {
namespace {

class SsdFsTest : public ::testing::Test {
 protected:
  sim::Clock clock_;
  SimFileSystem fs_{clock_, StorageCostModel::ext4_ssd()};
};

TEST_F(SsdFsTest, CreateOpenExistsRemove) {
  EXPECT_FALSE(fs_.exists("a"));
  fs_.create("a");
  EXPECT_TRUE(fs_.exists("a"));
  EXPECT_NO_THROW(fs_.open("a"));
  fs_.remove("a");
  EXPECT_FALSE(fs_.exists("a"));
  EXPECT_THROW(fs_.open("a"), StorageError);
  EXPECT_THROW(fs_.remove("a"), StorageError);
}

TEST_F(SsdFsTest, WriteReadRoundTrip) {
  auto& f = fs_.create("data");
  Bytes payload(10000);
  Rng(1).fill(payload.data(), payload.size());
  f.pwrite(0, payload);
  EXPECT_EQ(f.size(), payload.size());

  Bytes back(payload.size());
  f.pread(0, back);
  EXPECT_EQ(back, payload);
}

TEST_F(SsdFsTest, AppendGrowsFile) {
  auto& f = fs_.create("log");
  const Bytes a(100, 1), b(50, 2);
  f.append(a);
  f.append(b);
  EXPECT_EQ(f.size(), 150u);
  Bytes back(50);
  f.pread(100, back);
  EXPECT_EQ(back, Bytes(50, 2));
}

TEST_F(SsdFsTest, ReadPastEofThrows) {
  auto& f = fs_.create("small", 10);
  Bytes buf(11);
  EXPECT_THROW(f.pread(0, buf), StorageError);
  Bytes ok(10);
  EXPECT_NO_THROW(f.pread(0, ok));
}

TEST_F(SsdFsTest, TruncateShrinks) {
  auto& f = fs_.create("t", 100);
  f.truncate(40);
  EXPECT_EQ(f.size(), 40u);
}

TEST_F(SsdFsTest, FsyncClearsDirtyBytes) {
  auto& f = fs_.create("d");
  f.pwrite(0, Bytes(1000, 7));
  EXPECT_EQ(f.dirty_bytes(), 1000u);
  f.fsync();
  EXPECT_EQ(f.dirty_bytes(), 0u);
}

TEST_F(SsdFsTest, FsyncPaysDeviceWriteCost) {
  auto& f = fs_.create("d");
  f.pwrite(0, Bytes(1_MiB, 7));
  sim::Stopwatch sw(clock_);
  f.fsync();
  // 1 MiB at 0.46 GiB/s is ~2.1 ms; must dominate the base cost.
  EXPECT_GT(sw.elapsed(), 1.5e6);
}

TEST_F(SsdFsTest, CachedReadFasterThanCold) {
  auto& f = fs_.create("c", 1_MiB);
  fs_.drop_caches();
  Bytes buf(1_MiB);

  sim::Stopwatch cold(clock_);
  f.pread(0, buf);
  const auto cold_ns = cold.elapsed();

  sim::Stopwatch warm(clock_);
  f.pread(0, buf);
  const auto warm_ns = warm.elapsed();

  EXPECT_GT(cold_ns, 5 * warm_ns);

  fs_.drop_caches();
  sim::Stopwatch recold(clock_);
  f.pread(0, buf);
  EXPECT_GT(recold.elapsed(), 5 * warm_ns);
}

TEST(DaxFs, WriteIsSynchronouslyDurable) {
  sim::Clock clock;
  SimFileSystem fs(clock, StorageCostModel::ext4_dax_pm());
  auto& f = fs.create("pm");
  sim::Stopwatch sw(clock);
  f.pwrite(0, Bytes(1_MiB, 3));
  const auto write_ns = sw.elapsed();
  // DAX write pays media bandwidth immediately (≥ 1 MiB / 2.1 GiB/s ≈ 0.46 ms).
  EXPECT_GT(write_ns, 0.4e6);
  EXPECT_EQ(f.dirty_bytes(), 0u);

  sw.restart();
  f.fsync();
  EXPECT_LT(sw.elapsed(), 10000.0);  // fsync is metadata-only on DAX
}

TEST(StorageModels, PerServerSsdProfilesOrdered) {
  // The sgx-emlPM workstation's SATA SSD is strictly slower than the
  // emlSGX-PM server's NVMe drive (see docs/COST_MODELS.md).
  const auto nvme = StorageCostModel::ext4_ssd();
  const auto sata = StorageCostModel::ext4_ssd_sata();
  EXPECT_LT(sata.device_read_gib_s, nvme.device_read_gib_s);
  EXPECT_LT(sata.device_write_gib_s, nvme.device_write_gib_s);
  EXPECT_GE(sata.fsync_base_ns, nvme.fsync_base_ns);
  EXPECT_FALSE(sata.dax);
}

TEST(StorageModels, DaxRamdiskBetweenOptaneAndTmpfs) {
  const auto pm = StorageCostModel::ext4_dax_pm();
  const auto ram = StorageCostModel::ext4_dax_ramdisk();
  const auto tmpfs = StorageCostModel::tmpfs_ram();
  EXPECT_GT(ram.device_write_gib_s, pm.device_write_gib_s);
  EXPECT_LE(ram.device_read_gib_s, tmpfs.device_read_gib_s + 1.0);
  EXPECT_TRUE(ram.dax);
}

TEST(StorageModels, RelativeOrderingMatchesFig2) {
  // Write path: SSD << DAX-PM < tmpfs; read path: SSD << DAX-PM <= tmpfs.
  const auto ssd = StorageCostModel::ext4_ssd();
  const auto pm = StorageCostModel::ext4_dax_pm();
  const auto ram = StorageCostModel::tmpfs_ram();
  EXPECT_LT(ssd.device_write_gib_s, pm.device_write_gib_s);
  EXPECT_LT(pm.device_write_gib_s, ram.device_write_gib_s);
  EXPECT_LT(ssd.device_read_gib_s, pm.device_read_gib_s);
  EXPECT_LE(pm.device_read_gib_s, ram.device_read_gib_s);
}

// --- FIO engine --------------------------------------------------------------

FioResult fio(StorageCostModel model, FioJob job) {
  sim::Clock clock;
  SimFileSystem fs(clock, model);
  return run_fio(fs, job);
}

FioJob small_job(FioJob::Op op, FioJob::Pattern pat) {
  FioJob job;
  job.op = op;
  job.pattern = pat;
  job.file_size = 8_MiB;  // keep unit tests fast; the bench runs 512 MiB
  return job;
}

TEST(Fio, RejectsMisalignedFileSize) {
  sim::Clock clock;
  SimFileSystem fs(clock, StorageCostModel::tmpfs_ram());
  FioJob job;
  job.file_size = 4097;
  EXPECT_THROW(run_fio(fs, job), Error);
}

TEST(Fio, SsdWriteWithFsyncIsSlowest) {
  const auto ssd = fio(StorageCostModel::ext4_ssd(),
                       small_job(FioJob::Op::kWrite, FioJob::Pattern::kSequential));
  const auto pm = fio(StorageCostModel::ext4_dax_pm(),
                      small_job(FioJob::Op::kWrite, FioJob::Pattern::kSequential));
  const auto ram = fio(StorageCostModel::tmpfs_ram(),
                       small_job(FioJob::Op::kWrite, FioJob::Pattern::kSequential));
  EXPECT_LT(ssd.throughput_mib_s, pm.throughput_mib_s);
  EXPECT_LT(pm.throughput_mib_s, ram.throughput_mib_s);
  // Per-block fsync on SSD collapses throughput to tens of MiB/s.
  EXPECT_LT(ssd.throughput_mib_s, 100.0);
  EXPECT_GT(pm.throughput_mib_s, 500.0);
}

TEST(Fio, RandomReadSlowerThanSequentialOnSsd) {
  const auto seq = fio(StorageCostModel::ext4_ssd(),
                       small_job(FioJob::Op::kRead, FioJob::Pattern::kSequential));
  const auto rand = fio(StorageCostModel::ext4_ssd(),
                        small_job(FioJob::Op::kRead, FioJob::Pattern::kRandom));
  // Every 4 KiB random read pays the access latency.
  EXPECT_GT(seq.throughput_mib_s, 2 * rand.throughput_mib_s);
}

TEST(Fio, PmDaxReadNearRamSpeed) {
  const auto pm = fio(StorageCostModel::ext4_dax_pm(),
                      small_job(FioJob::Op::kRead, FioJob::Pattern::kSequential));
  const auto ram = fio(StorageCostModel::tmpfs_ram(),
                       small_job(FioJob::Op::kRead, FioJob::Pattern::kSequential));
  EXPECT_GT(pm.throughput_mib_s, 1000.0);           // order of GB/s
  EXPECT_GT(pm.throughput_mib_s, ram.throughput_mib_s * 0.3);
}

TEST(Fio, ReportsIoCount) {
  const auto r = fio(StorageCostModel::tmpfs_ram(),
                     small_job(FioJob::Op::kRead, FioJob::Pattern::kSequential));
  EXPECT_EQ(r.ios, 8_MiB / 4096);
  EXPECT_GT(r.elapsed_ns, 0.0);
}

}  // namespace
}  // namespace plinius::storage
