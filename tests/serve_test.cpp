#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/error.h"
#include "crypto/envelope.h"
#include "ml/config.h"
#include "ml/synth_digits.h"
#include "plinius/platform.h"
#include "plinius/trainer.h"
#include "serve/admission.h"
#include "serve/batcher.h"
#include "serve/loadgen.h"
#include "serve/request.h"
#include "serve/server.h"

namespace plinius::serve {
namespace {

crypto::AesGcm test_gcm() {
  Bytes key(16);
  Rng(99).fill(key.data(), key.size());
  return crypto::AesGcm(key);
}

// --- batcher (pure dispatch rule) ------------------------------------------------

TEST(Batcher, FullBatchDispatchesAtFloor) {
  const BatchPolicy policy{.max_batch = 4, .max_wait_ns = 1000};
  // Queue already full: dispatch when the worker frees and a request waits.
  EXPECT_EQ(batch_dispatch_ns(policy, 500, 4, 100, 100, 600), 500);
  EXPECT_EQ(batch_dispatch_ns(policy, 50, 4, 100, 100, 600), 100);
}

TEST(Batcher, FullBatchWaitsForItsNewestMember) {
  const BatchPolicy policy{.max_batch = 4, .max_wait_ns = 1000};
  // Regression: a batch filled mid-window by a late arrival (oldest at 100,
  // the filling request at 500) must dispatch at 500, not collapse to the
  // idle-worker/oldest floor — that would put a request "in service" before
  // it arrived (negative queue time).
  EXPECT_EQ(batch_dispatch_ns(policy, 0, 4, 100, 500, kNoArrival), 500);
  // A busy worker still dominates once it frees past the newest member.
  EXPECT_EQ(batch_dispatch_ns(policy, 800, 4, 100, 500, kNoArrival), 800);
}

TEST(Batcher, PartialBatchNeverDispatchesBeforeNewestMember) {
  const BatchPolicy policy{.max_batch = 8, .max_wait_ns = 1000};
  // No arrivals left and the batch won't fill: dispatch immediately, but
  // not before the newest queued request arrived.
  EXPECT_EQ(batch_dispatch_ns(policy, 0, 2, 100, 500, kNoArrival), 500);
}

TEST(Batcher, GreedyWhenNoWait) {
  const BatchPolicy policy{.max_batch = 8, .max_wait_ns = 0};
  EXPECT_EQ(batch_dispatch_ns(policy, 200, 1, 100, 100, 250), 200);
}

TEST(Batcher, HoldsForWaitWindow) {
  const BatchPolicy policy{.max_batch = 8, .max_wait_ns = 1000};
  // Next arrival past the window: dispatch at window end.
  EXPECT_EQ(batch_dispatch_ns(policy, 0, 1, 100, 100, 5000), 1100);
  // Next arrival inside the window: hold at least until the arrival.
  EXPECT_EQ(batch_dispatch_ns(policy, 0, 1, 100, 100, 600), 600);
  // No arrivals left: nothing to wait for.
  EXPECT_EQ(batch_dispatch_ns(policy, 0, 1, 100, 100, kNoArrival), 100);
}

// --- admission queue -------------------------------------------------------------

TEST(Admission, DepthBoundSheds) {
  AdmissionQueue queue(AdmissionOptions{.max_queue = 2});
  std::vector<Request> reqs(3);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    reqs[i].id = i;
    reqs[i].arrival_ns = static_cast<sim::Nanos>(i);
  }
  EXPECT_FALSE(queue.offer(reqs[0]).has_value());
  EXPECT_FALSE(queue.offer(reqs[1]).has_value());
  EXPECT_EQ(queue.offer(reqs[2]), ReplyStatus::kShedQueueFull);
  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_EQ(queue.stats().shed_queue_full, 1u);
}

TEST(Admission, DeadlineTestUsesServiceEstimate) {
  AdmissionQueue queue(AdmissionOptions{.max_queue = 16});
  queue.set_service_estimate_ns(1000);
  Request ok;
  ok.arrival_ns = 0;
  ok.deadline_ns = 1500;  // one service fits
  EXPECT_FALSE(queue.offer(ok).has_value());
  Request tight;
  tight.arrival_ns = 0;
  tight.deadline_ns = 1500;  // behind `ok`: 2 * 1000 > 1500
  EXPECT_EQ(queue.offer(tight), ReplyStatus::kShedDeadline);
  // Without a deadline the test never fires.
  Request open;
  open.arrival_ns = 0;
  EXPECT_FALSE(queue.offer(open).has_value());
}

TEST(Admission, PopSweepsExpired) {
  AdmissionQueue queue(AdmissionOptions{});
  Request stale, fresh;
  stale.id = 1;
  stale.arrival_ns = 0;
  stale.deadline_ns = 100;
  fresh.id = 2;
  fresh.arrival_ns = 10;
  EXPECT_FALSE(queue.offer(stale).has_value());
  EXPECT_FALSE(queue.offer(fresh).has_value());
  std::vector<const Request*> expired;
  const Request* got = queue.pop(500, expired);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->id, 2u);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0]->id, 1u);
  EXPECT_EQ(queue.stats().expired, 1u);
}

// --- sealed reply envelope -------------------------------------------------------

TEST(Reply, RoundTripAndTamper) {
  const auto gcm = test_gcm();
  crypto::IvSequence ivs(7);
  Bytes sealed = seal_reply(gcm, ivs, ReplyStatus::kOk, 42);
  EXPECT_EQ(sealed.size(), kReplySealedSize);
  const OpenedReply opened = open_reply(gcm, sealed);
  EXPECT_EQ(opened.status, ReplyStatus::kOk);
  EXPECT_EQ(opened.value, 42u);

  Bytes tampered = sealed;
  tampered[tampered.size() / 2] ^= 0x10;
  EXPECT_THROW((void)open_reply(gcm, tampered), CryptoError);
  EXPECT_THROW((void)open_reply(gcm, ByteSpan(sealed.data(), 5)), CryptoError);
}

// --- full server -----------------------------------------------------------------

// The fixture runs on the paper's main evaluation platform (emlSGX-PM).
// Serving there is bound by the per-call GCM setup cost, which batching
// spreads across the worker's TCS lanes — the regime the batcher targets.
// (On sgx-emlPM the MEE-throttled per-byte boundary copy caps the win near
// 2x; bench/serve_sweep covers both platforms.)
class ServeTest : public ::testing::Test {
 protected:
  ServeTest() : platform_(MachineProfile::emlsgx_pm(), 64 * 1024 * 1024) {
    platform_.enclave().set_tcs_count(8);
    ml::SynthDigitsOptions opt;
    opt.train_count = 1024;
    opt.test_count = 256;
    digits_ = ml::make_synth_digits(opt);
    trainer_ = std::make_unique<Trainer>(
        platform_, ml::make_cnn_config(2, 4, 32), TrainerOptions{});
    trainer_->load_dataset(digits_.train);
    (void)trainer_->train(20);
    gcm_ = std::make_unique<crypto::AesGcm>(trainer_->data_key());
  }

  std::vector<Request> workload(double rate_qps, std::size_t count,
                                sim::Nanos relative_deadline = kNoDeadline,
                                std::uint64_t seed = 1) {
    LoadGenOptions opt;
    opt.rate_qps = rate_qps;
    opt.count = count;
    opt.start_ns = 0;
    opt.relative_deadline_ns = relative_deadline;
    opt.seed = seed;
    crypto::IvSequence client_iv(1234);
    return poisson_workload(digits_.test, *gcm_, client_iv, opt);
  }

  Platform platform_;
  ml::SynthDigits digits_;
  std::unique_ptr<Trainer> trainer_;
  std::unique_ptr<crypto::AesGcm> gcm_;
};

TEST_F(ServeTest, EveryRequestRepliedAndStagesAccountExactly) {
  // Overload on purpose: tiny queue + tight deadlines force every reply
  // path (served, queue-full, deadline-shed, expired) to appear.
  const auto reqs = workload(1.0e6, 300, 5.0e4);
  ServerOptions opt;
  opt.workers = 2;
  opt.batch = {.max_batch = 8, .max_wait_ns = 10'000};
  opt.admission = {.max_queue = 16, .deadline_aware = true};
  InferenceServer server(platform_, trainer_->network(), *gcm_, opt,
                         &trainer_->mirror());
  const auto done = server.run(reqs);

  // Zero dropped-without-reply: exactly one completion per request id, and
  // every completion carries a well-formed sealed reply.
  ASSERT_EQ(done.size(), reqs.size());
  std::map<std::uint64_t, const Completion*> by_id;
  for (const auto& c : done) {
    EXPECT_TRUE(by_id.emplace(c.id, &c).second) << "duplicate reply id " << c.id;
    const OpenedReply opened = open_reply(*gcm_, c.sealed_reply);
    EXPECT_EQ(opened.status, c.status);
    if (c.served()) EXPECT_EQ(opened.value, c.prediction);

    // The per-stage accounting invariant.
    EXPECT_NEAR(c.stages.total(), c.done_ns - c.arrival_ns,
                1e-6 * std::max(1.0, c.done_ns - c.arrival_ns));
    EXPECT_GE(c.done_ns, c.arrival_ns);
  }
  for (const auto& r : reqs) EXPECT_TRUE(by_id.count(r.id));

  const auto& stats = server.stats();
  EXPECT_EQ(stats.arrived, reqs.size());
  EXPECT_EQ(stats.completed + stats.shed_total() + stats.auth_failed,
            reqs.size());
  EXPECT_GT(stats.completed, 0u);
  EXPECT_GT(stats.shed_total(), 0u);  // the overload actually shed
  EXPECT_GT(stats.batches, 0u);
  EXPECT_GT(stats.mean_batch(), 1.0);  // overload coalesced into real batches
}

TEST_F(ServeTest, BatchFilledMidWindowDispatchesAtFillingArrival) {
  // The reviewer-reported schedule: idle worker, max_batch = 4, a long hold
  // window, arrivals at 100/150/200/500 us. The t=500us arrival fills the
  // batch, so dispatch happens at t=500us — never at the t=100us floor,
  // which would give the filling request a negative queue time and a
  // completion before its own arrival.
  const sim::Nanos us = 1000.0;
  auto reqs = workload(20000.0, 4);
  reqs[0].arrival_ns = 100 * us;
  reqs[1].arrival_ns = 150 * us;
  reqs[2].arrival_ns = 200 * us;
  reqs[3].arrival_ns = 500 * us;

  ServerOptions opt;
  opt.workers = 1;
  opt.batch = {.max_batch = 4, .max_wait_ns = 1000 * us};
  opt.admission = {.max_queue = 16};
  InferenceServer server(platform_, trainer_->network(), *gcm_, opt);
  const auto done = server.run(reqs);

  ASSERT_EQ(done.size(), 4u);
  for (const auto& c : done) {
    EXPECT_EQ(c.status, ReplyStatus::kOk);
    EXPECT_EQ(c.batch_size, 4u);  // one batch, filled by the last arrival
    EXPECT_GE(c.stages.queue_ns, 0.0) << "request " << c.id;
    EXPECT_GE(c.done_ns, c.arrival_ns) << "request " << c.id;
  }
  for (const auto& c : done) {
    const sim::Nanos expect_queue = 500 * us - reqs[c.id].arrival_ns;
    EXPECT_DOUBLE_EQ(c.stages.queue_ns, expect_queue) << "request " << c.id;
  }
}

TEST_F(ServeTest, DeterministicScheduleAndAccounting) {
  const auto reqs = workload(20000.0, 200, 5.0e6);
  ServerOptions opt;
  opt.workers = 2;
  opt.batch = {.max_batch = 4, .max_wait_ns = 100'000};
  opt.admission = {.max_queue = 32};

  auto run_once = [&]() {
    InferenceServer server(platform_, trainer_->network(), *gcm_, opt);
    auto done = server.run(reqs);
    std::sort(done.begin(), done.end(),
              [](const Completion& a, const Completion& b) { return a.id < b.id; });
    return done;
  };
  const auto first = run_once();
  const auto second = run_once();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].id, second[i].id);
    EXPECT_EQ(first[i].status, second[i].status);
    EXPECT_EQ(first[i].prediction, second[i].prediction);
    EXPECT_EQ(first[i].batch_size, second[i].batch_size);
    EXPECT_EQ(first[i].worker, second[i].worker);
    EXPECT_DOUBLE_EQ(first[i].done_ns, second[i].done_ns);
    EXPECT_DOUBLE_EQ(first[i].stages.queue_ns, second[i].stages.queue_ns);
    EXPECT_DOUBLE_EQ(first[i].stages.decrypt_ns, second[i].stages.decrypt_ns);
    EXPECT_DOUBLE_EQ(first[i].stages.forward_ns, second[i].stages.forward_ns);
    EXPECT_DOUBLE_EQ(first[i].stages.seal_ns, second[i].stages.seal_ns);
    EXPECT_DOUBLE_EQ(first[i].stages.other_ns, second[i].stages.other_ns);
  }
}

TEST_F(ServeTest, BatchingAmortizesFixedCosts) {
  // A backlog (arrivals far faster than service) so the batcher always has
  // work: batch=16 must clear it much faster than batch=1 — one ecall and
  // one model touch per 16 requests instead of per request.
  const auto reqs = workload(1e7, 128);

  auto span_with_batch = [&](std::size_t max_batch) {
    ServerOptions opt;
    opt.workers = 1;
    opt.batch = {.max_batch = max_batch, .max_wait_ns = 0};
    opt.admission = {.max_queue = 1024};
    InferenceServer server(platform_, trainer_->network(), *gcm_, opt);
    (void)server.run(reqs);
    EXPECT_EQ(server.stats().completed, reqs.size());
    return server.stats().span_ns;
  };

  const sim::Nanos span1 = span_with_batch(1);
  const sim::Nanos span16 = span_with_batch(16);
  EXPECT_LT(span16 * 3.0, span1)
      << "batch=16 span " << span16 << " vs batch=1 span " << span1;
}

TEST_F(ServeTest, MoreWorkersDontSlowTheBacklog) {
  const auto reqs = workload(1e7, 128);
  auto span_with_workers = [&](std::size_t workers) {
    ServerOptions opt;
    opt.workers = workers;
    opt.batch = {.max_batch = 8, .max_wait_ns = 0};
    opt.admission = {.max_queue = 1024};
    InferenceServer server(platform_, trainer_->network(), *gcm_, opt);
    (void)server.run(reqs);
    EXPECT_EQ(server.stats().completed, reqs.size());
    EXPECT_EQ(server.lanes_per_worker(), 8 / workers);
    return server.stats().span_ns;
  };
  // 4 workers x 2 lanes overlap the per-batch fixed costs that 1 worker x
  // 8 lanes pays serially; aggregate forward throughput is identical.
  EXPECT_LE(span_with_workers(4), span_with_workers(1) * 1.01);
}

TEST_F(ServeTest, SheddingBoundsTailLatencyUnderOverload) {
  // Offered load well past capacity. With an unbounded queue the tail grows
  // with the backlog; with a bounded queue p99 stays pinned near
  // queue-depth / service-rate.
  const auto reqs = workload(1.0e6, 400);

  auto p99_with_queue = [&](std::size_t max_queue) {
    ServerOptions opt;
    opt.workers = 1;
    opt.batch = {.max_batch = 8, .max_wait_ns = 0};
    opt.admission = {.max_queue = max_queue, .deadline_aware = false};
    InferenceServer server(platform_, trainer_->network(), *gcm_, opt);
    const auto done = server.run(reqs);
    const SloReport rep = make_slo_report(reqs, done);
    return std::pair<sim::Nanos, std::uint64_t>(rep.p99_ns, rep.shed_queue_full);
  };

  const auto [p99_bounded, shed_bounded] = p99_with_queue(16);
  const auto [p99_unbounded, shed_unbounded] = p99_with_queue(1u << 20);
  EXPECT_EQ(shed_unbounded, 0u);
  EXPECT_GT(shed_bounded, 0u);
  EXPECT_LT(p99_bounded * 2, p99_unbounded)
      << "bounded p99 " << p99_bounded << " vs unbounded " << p99_unbounded;
}

TEST_F(ServeTest, HotReloadPicksUpNewMirrorWithoutDowntime) {
  InferenceServer server(platform_, trainer_->network(), *gcm_,
                         ServerOptions{.workers = 1,
                                       .batch = {.max_batch = 4, .max_wait_ns = 0},
                                       .admission = {.max_queue = 256}},
                         &trainer_->mirror());
  EXPECT_EQ(server.served_version(), 20u);

  // A concurrent trainer advances the mirror...
  (void)trainer_->train(30);
  EXPECT_EQ(trainer_->mirror().iteration(), 30u);

  // ...and the server picks it up between batches, serving every request.
  const auto reqs = workload(20000.0, 64);
  const auto done = server.run(reqs);
  EXPECT_EQ(done.size(), reqs.size());
  EXPECT_GE(server.stats().reloads, 1u);
  EXPECT_EQ(server.stats().reload_failures, 0u);
  EXPECT_EQ(server.served_version(), 30u);
}

TEST_F(ServeTest, CorruptMirrorNeverTearsTheServingModel) {
  InferenceServer server(platform_, trainer_->network(), *gcm_,
                         ServerOptions{.workers = 1,
                                       .batch = {.max_batch = 4, .max_wait_ns = 0},
                                       .admission = {.max_queue = 256}},
                         &trainer_->mirror());
  (void)trainer_->train(25);  // mirror now ahead of served_version

  // Snapshot the serving weights, then corrupt one sealed mirror buffer.
  std::vector<float> before;
  for (std::size_t l = 0; l < trainer_->network().num_layers(); ++l) {
    for (const auto& p : trainer_->network().layer(l).parameters()) {
      before.insert(before.end(), p.values.begin(), p.values.end());
    }
  }
  const auto extents = trainer_->mirror().sealed_extents();
  ASSERT_FALSE(extents.empty());
  trainer_->romulus().main_base()[extents[0].primary_off + 16] ^= 0x01;

  const auto reqs = workload(20000.0, 64);
  const auto done = server.run(reqs);
  EXPECT_EQ(done.size(), reqs.size());
  EXPECT_GE(server.stats().reload_failures, 1u);
  EXPECT_EQ(server.stats().reloads, 0u);
  EXPECT_EQ(server.served_version(), 20u);  // still on the pre-corruption model

  // The failed snapshot restores must not have touched a single weight.
  std::vector<float> after;
  for (std::size_t l = 0; l < trainer_->network().num_layers(); ++l) {
    for (const auto& p : trainer_->network().layer(l).parameters()) {
      after.insert(after.end(), p.values.begin(), p.values.end());
    }
  }
  EXPECT_EQ(before, after);
}

TEST_F(ServeTest, AuthFailedQueriesGetSealedErrorReplies) {
  auto reqs = workload(10000.0, 16);
  reqs[5].sealed_query[reqs[5].sealed_query.size() / 2] ^= 0xFF;  // tamper
  reqs[9].sealed_query.resize(10);                                // truncate

  InferenceServer server(platform_, trainer_->network(), *gcm_,
                         ServerOptions{.workers = 1,
                                       .batch = {.max_batch = 4, .max_wait_ns = 0},
                                       .admission = {.max_queue = 256}});
  const auto done = server.run(reqs);
  ASSERT_EQ(done.size(), reqs.size());
  std::size_t auth_failed = 0;
  for (const auto& c : done) {
    if (c.id == 5 || c.id == 9) {
      EXPECT_EQ(c.status, ReplyStatus::kAuthFailed);
      EXPECT_EQ(open_reply(*gcm_, c.sealed_reply).status, ReplyStatus::kAuthFailed);
      ++auth_failed;
    } else {
      EXPECT_EQ(c.status, ReplyStatus::kOk);
    }
  }
  EXPECT_EQ(auth_failed, 2u);
  EXPECT_EQ(server.stats().auth_failed, 2u);
}

TEST_F(ServeTest, ServeLogPersistsWindowRecords) {
  ServeLog log(trainer_->romulus(), platform_.enclave());
  EXPECT_FALSE(log.exists());
  log.create(8);
  ASSERT_TRUE(log.exists());

  InferenceServer server(platform_, trainer_->network(), *gcm_,
                         ServerOptions{.workers = 2,
                                       .batch = {.max_batch = 4, .max_wait_ns = 0},
                                       .admission = {.max_queue = 8}},
                         &trainer_->mirror(), &log);
  const auto reqs = workload(40000.0, 100);
  const auto done = server.run(reqs);
  ASSERT_EQ(log.size(), 1u);
  const ServeWindowRecord rec = log.at(0);
  EXPECT_EQ(rec.window, 0u);
  EXPECT_EQ(rec.arrived, reqs.size());
  const SloReport rep = make_slo_report(reqs, done);
  EXPECT_EQ(rec.completed, rep.served);
  EXPECT_EQ(rec.shed, rep.shed_total());
  EXPECT_EQ(rec.model_version, server.served_version());
  EXPECT_NEAR(rec.p99_us, rep.p99_ns / 1000.0, 1e-3 * std::max(1.0, rep.p99_ns / 1000.0));

  // A second window appends with the next window number.
  (void)server.run(workload(40000.0, 50, kNoDeadline, 2));
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.at(1).window, 1u);
}

TEST_F(ServeTest, SloReportAddsUpAndScoresAccuracy) {
  const auto reqs = workload(5000.0, 128);
  InferenceServer server(platform_, trainer_->network(), *gcm_,
                         ServerOptions{.workers = 2,
                                       .batch = {.max_batch = 8, .max_wait_ns = 100'000},
                                       .admission = {.max_queue = 64}});
  const auto done = server.run(reqs);
  const SloReport rep = make_slo_report(reqs, done);
  EXPECT_EQ(rep.offered, reqs.size());
  EXPECT_EQ(rep.served + rep.shed_total() + rep.auth_failed, reqs.size());
  EXPECT_GT(rep.goodput_qps, 0.0);
  EXPECT_LE(rep.p50_ns, rep.p95_ns);
  EXPECT_LE(rep.p95_ns, rep.p99_ns);
  EXPECT_LE(rep.p99_ns, rep.max_ns);
  EXPECT_GT(rep.accuracy, 0.3);  // briefly-trained model still beats chance
  EXPECT_FALSE(to_string(rep).empty());
}

}  // namespace
}  // namespace plinius::serve
