#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>

#include "common/rng.h"
#include "ml/activation.h"
#include "ml/config.h"
#include "ml/connected_layer.h"
#include "ml/conv_layer.h"
#include "ml/data.h"
#include "ml/gemm.h"
#include "ml/im2col.h"
#include "ml/maxpool_layer.h"
#include "ml/network.h"
#include "ml/serialize.h"
#include "ml/softmax_layer.h"
#include "ml/synth_digits.h"

namespace plinius::ml {
namespace {

// --- GEMM ----------------------------------------------------------------------

TEST(Gemm, NnSmallKnownResult) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  const float a[] = {1, 2, 3, 4};
  const float b[] = {5, 6, 7, 8};
  float c[4] = {};
  gemm_nn(2, 2, 2, 1.0f, a, b, c);
  EXPECT_FLOAT_EQ(c[0], 19);
  EXPECT_FLOAT_EQ(c[1], 22);
  EXPECT_FLOAT_EQ(c[2], 43);
  EXPECT_FLOAT_EQ(c[3], 50);
}

TEST(Gemm, VariantsAgreeWithExplicitTransposition) {
  Rng rng(1);
  constexpr std::size_t m = 7, n = 5, k = 9;
  std::vector<float> a(m * k), b(k * n);
  for (auto& v : a) v = rng.normal();
  for (auto& v : b) v = rng.normal();

  std::vector<float> at(k * m), bt(n * k);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t p = 0; p < k; ++p) at[p * m + i] = a[i * k + p];
  for (std::size_t p = 0; p < k; ++p)
    for (std::size_t j = 0; j < n; ++j) bt[j * k + p] = b[p * n + j];

  std::vector<float> c_nn(m * n, 0), c_nt(m * n, 0), c_tn(m * n, 0), c_tt(m * n, 0);
  gemm(false, false, m, n, k, 1.0f, a.data(), b.data(), c_nn.data());
  gemm(false, true, m, n, k, 1.0f, a.data(), bt.data(), c_nt.data());
  gemm(true, false, m, n, k, 1.0f, at.data(), b.data(), c_tn.data());
  gemm(true, true, m, n, k, 1.0f, at.data(), bt.data(), c_tt.data());

  for (std::size_t i = 0; i < m * n; ++i) {
    EXPECT_NEAR(c_nn[i], c_nt[i], 1e-4);
    EXPECT_NEAR(c_nn[i], c_tn[i], 1e-4);
    EXPECT_NEAR(c_nn[i], c_tt[i], 1e-4);
  }
}

TEST(Gemm, AlphaAndAccumulate) {
  const float a[] = {1, 1};
  const float b[] = {2, 3};
  float c[1] = {10};
  gemm_nn(1, 1, 2, 0.5f, a, b, c);
  EXPECT_FLOAT_EQ(c[0], 10 + 0.5f * 5);
}

// --- im2col ---------------------------------------------------------------------

TEST(Im2col, OutDim) {
  EXPECT_EQ(conv_out_dim(28, 3, 1, 1), 28u);
  EXPECT_EQ(conv_out_dim(28, 3, 2, 1), 14u);
  EXPECT_EQ(conv_out_dim(28, 2, 2, 0), 14u);
}

TEST(Im2col, IdentityFor1x1) {
  Rng rng(2);
  std::vector<float> im(3 * 4 * 4);
  for (auto& v : im) v = rng.normal();
  std::vector<float> col(im.size());
  im2col(im.data(), 3, 4, 4, 1, 1, 0, col.data());
  EXPECT_EQ(im, col);
}

TEST(Im2col, KnownPatch) {
  // 1-channel 3x3 image, k=3, stride=1, pad=1: center column (output pixel
  // (1,1)) must reproduce the whole image.
  std::vector<float> im = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<float> col(9 * 9);
  im2col(im.data(), 1, 3, 3, 3, 1, 1, col.data());
  // out position (1,1) is column index 4; rows are kernel elements.
  for (int r = 0; r < 9; ++r) {
    EXPECT_FLOAT_EQ(col[r * 9 + 4], im[r]);
  }
  // Top-left output (0,0): kernel element (0,0) hangs over the pad => 0.
  EXPECT_FLOAT_EQ(col[0], 0.0f);
}

TEST(Im2col, Col2imAdjointProperty) {
  // <im2col(x), y> == <x, col2im(y)> — the transforms must be adjoint, or
  // conv backward gradients are wrong.
  Rng rng(3);
  const std::size_t c = 2, h = 5, w = 5, k = 3, stride = 2, pad = 1;
  const std::size_t oh = conv_out_dim(h, k, stride, pad);
  const std::size_t ow = conv_out_dim(w, k, stride, pad);
  std::vector<float> x(c * h * w), y(c * k * k * oh * ow);
  for (auto& v : x) v = rng.normal();
  for (auto& v : y) v = rng.normal();

  std::vector<float> colx(y.size());
  im2col(x.data(), c, h, w, k, stride, pad, colx.data());
  double lhs = std::inner_product(colx.begin(), colx.end(), y.begin(), 0.0);

  std::vector<float> imy(x.size(), 0.0f);
  col2im(y.data(), c, h, w, k, stride, pad, imy.data());
  double rhs = std::inner_product(imy.begin(), imy.end(), x.begin(), 0.0);

  EXPECT_NEAR(lhs, rhs, 1e-3);
}

// --- activations -----------------------------------------------------------------

TEST(Activations, LeakyReluForwardAndGradient) {
  float x[] = {-2.0f, 0.5f};
  activate(Activation::kLeakyRelu, x, 2);
  EXPECT_FLOAT_EQ(x[0], -0.2f);
  EXPECT_FLOAT_EQ(x[1], 0.5f);
  float d[] = {1.0f, 1.0f};
  gradient(Activation::kLeakyRelu, x, d, 2);
  EXPECT_FLOAT_EQ(d[0], 0.1f);
  EXPECT_FLOAT_EQ(d[1], 1.0f);
}

TEST(Activations, NameRoundTrip) {
  for (const auto a : {Activation::kLinear, Activation::kLeakyRelu, Activation::kRelu,
                       Activation::kLogistic, Activation::kTanh}) {
    EXPECT_EQ(activation_from_name(activation_name(a)), a);
  }
  EXPECT_THROW(activation_from_name("swish"), MlError);
}

// --- numerical gradient checks -----------------------------------------------------
//
// The strongest correctness test for backprop: perturb each parameter /
// input and compare the numerical directional derivative of the loss with
// the analytic gradient accumulated by backward().

struct GradCheckNet {
  GradCheckNet(bool batch_normalize, Activation act) : rng(7), net(Shape{1, 6, 6}) {
    ConvConfig c;
    c.filters = 3;
    c.ksize = 3;
    c.stride = 1;
    c.pad = 1;
    c.batch_normalize = batch_normalize;
    c.activation = act;
    net.add(std::make_unique<ConvLayer>(Shape{1, 6, 6}, c, rng));
    net.add(std::make_unique<MaxPoolLayer>(Shape{3, 6, 6}, MaxPoolConfig{2, 2}));
    ConnectedConfig fc;
    fc.outputs = 4;
    net.add(std::make_unique<ConnectedLayer>(Shape{3, 3, 3}, fc, rng));
    net.add(std::make_unique<SoftmaxLayer>(Shape{4, 1, 1}));

    const std::size_t batch = 5;
    x.resize(batch * 36);
    y.assign(batch * 4, 0.0f);
    for (auto& v : x) v = rng.normal();
    for (std::size_t b = 0; b < batch; ++b) y[b * 4 + rng.below(4)] = 1.0f;
  }

  float loss() { return net.eval_loss(x.data(), y.data(), 5); }

  // Training-mode loss (batch-norm uses batch statistics).
  float train_loss() {
    net.forward(x.data(), 5, /*train=*/true);
    auto* sm = dynamic_cast<SoftmaxLayer*>(&net.layer(net.num_layers() - 1));
    return sm->loss_and_delta(y.data(), 5);
  }

  Rng rng;
  Network net;
  std::vector<float> x, y;
};

TEST(GradCheck, ConvNetParametersMatchNumericalGradient) {
  for (const bool bn : {false, true}) {
    GradCheckNet g(bn, Activation::kTanh);  // smooth activation for FD accuracy

    // Analytic gradients: one forward/backward in train mode.
    g.net.forward(g.x.data(), 5, true);
    auto* sm = dynamic_cast<SoftmaxLayer*>(&g.net.layer(g.net.num_layers() - 1));
    (void)sm->loss_and_delta(g.y.data(), 5);
    // backward is private via train_batch; emulate by calling train_batch
    // with zero learning rate so parameters are unchanged but updates filled.
    g.net.hyper() = SgdParams{0.0f, 0.0f, 0.0f};
    (void)g.net.train_batch(g.x.data(), g.y.data(), 5);

    // Collect analytic grads (updates hold the *negative* gradient; momentum
    // 0 means they persist).
    struct Probe {
      std::size_t layer, buffer, index;
    };
    std::vector<Probe> probes = {{0, 0, 3},  {0, 0, 11}, {0, 1, 1},
                                 {2, 0, 20}, {2, 1, 2}};
    if (bn) probes.push_back({0, 2, 1});  // scales

    for (const auto& p : probes) {
      // Fresh identical net for each probe to avoid update contamination.
      GradCheckNet fresh(bn, Activation::kTanh);
      fresh.net.hyper() = SgdParams{0.0f, 0.0f, 0.0f};
      (void)fresh.net.train_batch(fresh.x.data(), fresh.y.data(), 5);
      // Read analytic negative gradient. parameters() exposes values only,
      // so re-derive via finite differences of the *update* effect instead:
      // apply one SGD step with lr=eps_lr and measure the parameter change.
      // Simpler: recompute updates through a second zero-lr pass and inspect
      // the parameter buffer movement under a tiny lr.
      auto params_before = fresh.net.layer(p.layer).parameters();
      const float before = params_before[p.buffer].values[p.index];
      fresh.net.hyper() = SgdParams{1e-3f, 0.0f, 0.0f};
      (void)fresh.net.train_batch(fresh.x.data(), fresh.y.data(), 5);
      auto params_after = fresh.net.layer(p.layer).parameters();
      const float after = params_after[p.buffer].values[p.index];
      // With momentum 0 the update buffer holds exactly one batch's
      // accumulated (summed) gradient, applied as value += (lr/batch)*sum.
      // The numeric reference differentiates the *mean* loss, and
      // mean-grad = sum-grad / batch, so: mean_neg_grad = (after-before)/lr.
      const float analytic_neg_grad = (after - before) / 1e-3f;

      // Numerical gradient at the *post-first-step* parameters: rebuild and
      // replicate the state, then central-difference the training loss.
      GradCheckNet num(bn, Activation::kTanh);
      num.net.hyper() = SgdParams{0.0f, 0.0f, 0.0f};
      (void)num.net.train_batch(num.x.data(), num.y.data(), 5);
      auto bufs = num.net.layer(p.layer).parameters();
      float* target = &bufs[p.buffer].values[p.index];
      const float eps = 5e-3f;
      const float saved = *target;
      *target = saved + eps;
      const float loss_plus = num.train_loss();
      *target = saved - eps;
      const float loss_minus = num.train_loss();
      *target = saved;
      const float numeric_grad = (loss_plus - loss_minus) / (2 * eps);

      // negative gradient convention: analytic_neg_grad ~ -numeric_grad
      EXPECT_NEAR(analytic_neg_grad, -numeric_grad,
                  5e-2f * std::max(1.0f, std::abs(numeric_grad)))
          << "bn=" << bn << " layer=" << p.layer << " buf=" << p.buffer
          << " idx=" << p.index;
    }
  }
}

TEST(GradCheck, InputGradientMatchesNumerical) {
  GradCheckNet g(false, Activation::kTanh);
  // Add an extra conv layer at the bottom by probing the input gradient of
  // layer 1 indirectly: perturb an input pixel and compare loss change with
  // the delta accumulated in layer 0's... the input itself has no delta
  // buffer, so probe through layer boundaries: use layer 0's delta after
  // backward of layers above. Simplest meaningful check: perturb input and
  // verify train-mode loss changes smoothly (sanity) while analytic input
  // delta of the first layer is finite.
  g.net.hyper() = SgdParams{0.0f, 0.0f, 0.0f};
  const float base = g.net.train_batch(g.x.data(), g.y.data(), 5);
  EXPECT_TRUE(std::isfinite(base));
  g.x[17] += 1e-2f;
  const float perturbed = g.net.train_batch(g.x.data(), g.y.data(), 5);
  EXPECT_TRUE(std::isfinite(perturbed));
  EXPECT_NE(base, perturbed);
}

// --- layer mechanics ----------------------------------------------------------------

TEST(ConvLayer, OutputShape) {
  Rng rng(1);
  ConvConfig c;
  c.filters = 8;
  c.stride = 2;
  ConvLayer layer(Shape{1, 28, 28}, c, rng);
  EXPECT_EQ(layer.output_shape(), (Shape{8, 14, 14}));
  EXPECT_GT(layer.forward_macs(), 0u);
}

TEST(ConvLayer, FiveParameterBuffersWithBatchNorm) {
  Rng rng(1);
  ConvConfig c;
  ConvLayer bn_layer(Shape{1, 28, 28}, c, rng);
  EXPECT_EQ(bn_layer.parameters().size(), 5u);  // paper's 5 matrices/layer

  c.batch_normalize = false;
  ConvLayer plain(Shape{1, 28, 28}, c, rng);
  EXPECT_EQ(plain.parameters().size(), 2u);
}

TEST(ConvLayer, RejectsKernelLargerThanInput) {
  Rng rng(1);
  ConvConfig c;
  c.ksize = 9;
  c.pad = 0;
  EXPECT_THROW(ConvLayer(Shape{1, 4, 4}, c, rng), Error);
}

TEST(MaxPool, ForwardSelectsMaxAndRoutesGradient) {
  MaxPoolLayer pool(Shape{1, 2, 2}, MaxPoolConfig{2, 2});
  pool.prepare(1);
  const float in[] = {1, 7, 3, 5};
  pool.forward(in, 1, true);
  EXPECT_FLOAT_EQ(pool.output()[0], 7);

  pool.delta()[0] = 2.5f;
  float in_delta[4] = {};
  pool.backward(in, in_delta, 1);
  EXPECT_FLOAT_EQ(in_delta[0], 0);
  EXPECT_FLOAT_EQ(in_delta[1], 2.5f);  // position of the max
  EXPECT_FLOAT_EQ(in_delta[2], 0);
  EXPECT_FLOAT_EQ(in_delta[3], 0);
}

TEST(Softmax, OutputsAreDistribution) {
  SoftmaxLayer sm(Shape{4, 1, 1});
  sm.prepare(2);
  const float in[] = {1, 2, 3, 4, -1, 0, 1, 100};
  sm.forward(in, 2, false);
  for (int b = 0; b < 2; ++b) {
    float sum = 0;
    for (int i = 0; i < 4; ++i) {
      const float p = sm.output()[b * 4 + i];
      EXPECT_GE(p, 0);
      EXPECT_LE(p, 1.0001f);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
  // Large logits must not overflow (max subtraction).
  EXPECT_NEAR(sm.output()[7], 1.0f, 1e-5);
}

TEST(Softmax, LossOfPerfectPredictionIsNearZero) {
  SoftmaxLayer sm(Shape{2, 1, 1});
  sm.prepare(1);
  const float in[] = {100.0f, -100.0f};
  sm.forward(in, 1, false);
  const float y[] = {1.0f, 0.0f};
  EXPECT_NEAR(sm.loss_and_delta(y, 1), 0.0f, 1e-4);
}

// --- network / config ------------------------------------------------------------------

TEST(Network, RejectsMismatchedLayerChain) {
  Rng rng(1);
  Network net(Shape{1, 28, 28});
  ConnectedConfig fc;
  EXPECT_THROW(net.add(std::make_unique<ConnectedLayer>(Shape{1, 10, 10}, fc, rng)),
               Error);
}

TEST(Network, TrainBatchRequiresSoftmaxHead) {
  Rng rng(1);
  Network net(Shape{1, 6, 6});
  ConnectedConfig fc;
  fc.outputs = 4;
  net.add(std::make_unique<ConnectedLayer>(Shape{1, 6, 6}, fc, rng));
  std::vector<float> x(36, 0.1f), y(4, 0);
  y[0] = 1;
  EXPECT_THROW((void)net.train_batch(x.data(), y.data(), 1), Error);
}

TEST(Config, ParseRoundTrip) {
  const std::string text =
      "[net]\nbatch=64\nlearning_rate=0.05\nheight=28\nwidth=28\nchannels=1\n"
      "# comment\n"
      "[convolutional]\nfilters=4\nstride=2\n\n[connected]\noutput=10\n\n[softmax]\n";
  const auto cfg = ModelConfig::parse(text);
  EXPECT_EQ(cfg.sections.size(), 4u);
  EXPECT_EQ(cfg.batch(), 64u);
  EXPECT_FLOAT_EQ(cfg.sgd_params().learning_rate, 0.05f);
  EXPECT_EQ(cfg.input_shape(), (Shape{1, 28, 28}));

  const auto again = ModelConfig::parse(cfg.to_string());
  EXPECT_EQ(again.sections.size(), cfg.sections.size());
  EXPECT_EQ(again.batch(), 64u);
}

TEST(Config, ParseErrors) {
  EXPECT_THROW(ModelConfig::parse("batch=1\n"), MlError);            // option before section
  EXPECT_THROW(ModelConfig::parse("[convolutional]\n"), MlError);    // first must be net
  EXPECT_THROW(ModelConfig::parse("[net\nbatch=1\n"), MlError);      // unterminated
  EXPECT_THROW(ModelConfig::parse("[net]\nbatch\n"), MlError);       // no '='
  const auto cfg = ModelConfig::parse("[net]\nbatch=x\n");
  EXPECT_THROW((void)cfg.batch(), MlError);                          // non-integer
}

TEST(Config, BuildNetworkFromGeneratedConfig) {
  const auto cfg = make_cnn_config(5);
  Rng rng(1);
  Network net = build_network(cfg, rng);
  // 5 conv + connected + softmax.
  EXPECT_EQ(net.num_layers(), 7u);
  EXPECT_EQ(net.output_shape().size(), 10u);
  EXPECT_GT(net.parameter_bytes(), 0u);
}

TEST(Config, UnknownSectionRejected) {
  const auto cfg = ModelConfig::parse("[net]\nheight=6\nwidth=6\nchannels=1\n[lstm]\n");
  Rng rng(1);
  EXPECT_THROW((void)build_network(cfg, rng), MlError);
}

// --- data / synth digits -----------------------------------------------------------------

TEST(Data, MatrixSerializationRoundTrip) {
  Matrix m(3, 4);
  Rng(5).fill(reinterpret_cast<std::uint8_t*>(m.values.data()), m.bytes());
  const Bytes blob = matrix_to_bytes(m);
  const Matrix back = matrix_from_bytes(blob);
  EXPECT_EQ(back.rows, m.rows);
  EXPECT_EQ(back.cols, m.cols);
  EXPECT_EQ(back.values, m.values);

  Bytes corrupt = blob;
  corrupt[0] ^= 1;
  EXPECT_THROW((void)matrix_from_bytes(corrupt), MlError);
  EXPECT_THROW((void)matrix_from_bytes(ByteSpan(blob.data(), 10)), MlError);
}

TEST(Data, SampleBatchDrawsRows) {
  Dataset d;
  d.x = Matrix(10, 2);
  d.y = Matrix(10, 3);
  for (std::size_t r = 0; r < 10; ++r) {
    d.x.row(r)[0] = static_cast<float>(r);
    d.y.row(r)[0] = static_cast<float>(r);
  }
  Rng rng(1);
  std::vector<float> bx(4 * 2), by(4 * 3);
  sample_batch(d, 4, rng, bx.data(), by.data());
  for (int b = 0; b < 4; ++b) {
    EXPECT_EQ(bx[b * 2], by[b * 3]);  // x row matches its label row
  }
}

TEST(SynthDigits, DeterministicAndWellFormed) {
  SynthDigitsOptions opt;
  opt.train_count = 200;
  opt.test_count = 50;
  const auto a = make_synth_digits(opt);
  const auto b = make_synth_digits(opt);
  EXPECT_EQ(a.train.x.values, b.train.x.values);
  EXPECT_EQ(a.test.y.values, b.test.y.values);
  EXPECT_EQ(a.train.x.rows, 200u);
  EXPECT_EQ(a.train.x.cols, kDigitPixels);
  EXPECT_EQ(a.test.y.cols, kDigitClasses);

  // Pixels in [0,1]; labels one-hot.
  for (const float v : a.train.x.values) {
    ASSERT_GE(v, 0.0f);
    ASSERT_LE(v, 1.0f);
  }
  for (std::size_t r = 0; r < a.train.y.rows; ++r) {
    float sum = 0;
    for (std::size_t c = 0; c < kDigitClasses; ++c) sum += a.train.y.row(r)[c];
    ASSERT_FLOAT_EQ(sum, 1.0f);
  }
}

TEST(SynthDigits, ClassesAreVisuallyDistinct) {
  Rng rng(1);
  std::vector<std::vector<float>> clean(10, std::vector<float>(kDigitPixels));
  for (int d = 0; d < 10; ++d) {
    render_digit(d, 6, 3, 1.0f, 0.0f, rng, clean[d].data());
  }
  for (int i = 0; i < 10; ++i) {
    for (int j = i + 1; j < 10; ++j) {
      double dist = 0;
      for (std::size_t p = 0; p < kDigitPixels; ++p) {
        const double diff = clean[i][p] - clean[j][p];
        dist += diff * diff;
      }
      EXPECT_GT(dist, 1.0) << "digits " << i << " and " << j << " look identical";
    }
  }
}

// --- weights serialization ---------------------------------------------------------------

TEST(Serialize, RoundTripPreservesWeightsAndIterations) {
  Rng rng(3);
  Network net = build_network(make_cnn_config(2, 4), rng);
  net.set_iterations(77);
  const Bytes blob = serialize_weights(net);

  Rng rng2(99);  // different init
  Network other = build_network(make_cnn_config(2, 4), rng2);
  deserialize_weights(other, blob);
  EXPECT_EQ(other.iterations(), 77u);

  // All parameter buffers must now be identical.
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    auto a = net.layer(l).parameters();
    auto b = other.layer(l).parameters();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(std::vector<float>(a[i].values.begin(), a[i].values.end()),
                std::vector<float>(b[i].values.begin(), b[i].values.end()));
    }
  }
}

TEST(Serialize, MismatchedArchitectureRejected) {
  Rng rng(3);
  Network net = build_network(make_cnn_config(2, 4), rng);
  const Bytes blob = serialize_weights(net);
  Network bigger = build_network(make_cnn_config(3, 4), rng);
  EXPECT_THROW(deserialize_weights(bigger, blob), MlError);

  Bytes truncated(blob.begin(), blob.begin() + blob.size() / 2);
  EXPECT_THROW(deserialize_weights(net, truncated), MlError);

  Bytes bad_magic = blob;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(deserialize_weights(net, bad_magic), MlError);
}

// --- end-to-end learning ------------------------------------------------------------------

TEST(Training, LossDecreasesOnSynthDigits) {
  SynthDigitsOptions opt;
  opt.train_count = 2000;
  opt.test_count = 500;
  const auto digits = make_synth_digits(opt);

  Rng rng(11);
  Network net = build_network(make_cnn_config(3, 8, 32), rng);

  Rng batch_rng(22);
  std::vector<float> bx(32 * kDigitPixels), by(32 * kDigitClasses);
  float first_losses = 0, last_losses = 0;
  const int iters = 60;
  for (int it = 0; it < iters; ++it) {
    sample_batch(digits.train, 32, batch_rng, bx.data(), by.data());
    const float loss = net.train_batch(bx.data(), by.data(), 32);
    ASSERT_TRUE(std::isfinite(loss)) << "iteration " << it;
    if (it < 10) first_losses += loss;
    if (it >= iters - 10) last_losses += loss;
  }
  EXPECT_LT(last_losses, 0.6f * first_losses);

  const double acc = net.accuracy(digits.test.x.values.data(),
                                  digits.test.y.values.data(), digits.test.size());
  EXPECT_GT(acc, 0.5);  // 10% is chance; the digits are learnable quickly
}

}  // namespace
}  // namespace plinius::ml
