#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>

#include "common/rng.h"
#include "ml/avgpool_layer.h"
#include "ml/config.h"
#include "ml/dropout_layer.h"
#include "ml/network.h"
#include "ml/schedule.h"
#include "ml/softmax_layer.h"
#include "ml/synth_digits.h"

namespace plinius::ml {
namespace {

// --- learning-rate schedules ----------------------------------------------------

TEST(LrSchedule, ConstantPolicy) {
  LrSchedule s;
  s.base_lr = 0.25f;
  EXPECT_FLOAT_EQ(s.at(0), 0.25f);
  EXPECT_FLOAT_EQ(s.at(100000), 0.25f);
}

TEST(LrSchedule, StepsPolicy) {
  LrSchedule s;
  s.policy = LrSchedule::Policy::kSteps;
  s.base_lr = 1.0f;
  s.steps = {100, 200};
  s.scales = {0.5f, 0.2f};
  EXPECT_FLOAT_EQ(s.at(0), 1.0f);
  EXPECT_FLOAT_EQ(s.at(99), 1.0f);
  EXPECT_FLOAT_EQ(s.at(100), 0.5f);
  EXPECT_FLOAT_EQ(s.at(199), 0.5f);
  EXPECT_FLOAT_EQ(s.at(200), 0.1f);   // cumulative: 0.5 * 0.2
}

TEST(LrSchedule, StepsWithMissingScalesDefaultToTenth) {
  LrSchedule s;
  s.policy = LrSchedule::Policy::kSteps;
  s.base_lr = 1.0f;
  s.steps = {10};
  EXPECT_FLOAT_EQ(s.at(10), 0.1f);
}

TEST(LrSchedule, ExpPolicyDecays) {
  LrSchedule s;
  s.policy = LrSchedule::Policy::kExp;
  s.base_lr = 1.0f;
  s.gamma = 0.9f;
  EXPECT_FLOAT_EQ(s.at(0), 1.0f);
  EXPECT_NEAR(s.at(10), std::pow(0.9f, 10.0f), 1e-6);
  EXPECT_LT(s.at(50), s.at(10));
}

TEST(LrSchedule, PolyPolicyReachesZero) {
  LrSchedule s;
  s.policy = LrSchedule::Policy::kPoly;
  s.base_lr = 1.0f;
  s.power = 2.0f;
  s.max_iterations = 100;
  EXPECT_FLOAT_EQ(s.at(0), 1.0f);
  EXPECT_NEAR(s.at(50), 0.25f, 1e-6);
  EXPECT_FLOAT_EQ(s.at(100), 0.0f);
  EXPECT_FLOAT_EQ(s.at(500), 0.0f);  // clamped past max
}

TEST(LrSchedule, BurnInRampsUp) {
  LrSchedule s;
  s.base_lr = 1.0f;
  s.burn_in = 100;
  s.burn_power = 1.0f;
  EXPECT_NEAR(s.at(0), 0.01f, 1e-6);
  EXPECT_NEAR(s.at(49), 0.5f, 1e-6);
  EXPECT_FLOAT_EQ(s.at(100), 1.0f);
}

TEST(LrSchedule, PolicyNames) {
  EXPECT_EQ(LrSchedule::policy_from_name("constant"), LrSchedule::Policy::kConstant);
  EXPECT_EQ(LrSchedule::policy_from_name("steps"), LrSchedule::Policy::kSteps);
  EXPECT_EQ(LrSchedule::policy_from_name("exp"), LrSchedule::Policy::kExp);
  EXPECT_EQ(LrSchedule::policy_from_name("poly"), LrSchedule::Policy::kPoly);
  EXPECT_THROW(LrSchedule::policy_from_name("cosine"), MlError);
}

TEST(LrSchedule, ParsedFromConfig) {
  const auto cfg = ModelConfig::parse(
      "[net]\nlearning_rate=0.5\npolicy=steps\nsteps=10,20\nscales=0.1,0.5\n"
      "burn_in=5\nheight=6\nwidth=6\nchannels=1\n[softmax]\n");
  const auto s = cfg.lr_schedule();
  EXPECT_EQ(s.policy, LrSchedule::Policy::kSteps);
  EXPECT_FLOAT_EQ(s.base_lr, 0.5f);
  ASSERT_EQ(s.steps.size(), 2u);
  EXPECT_EQ(s.steps[1], 20u);
  ASSERT_EQ(s.scales.size(), 2u);
  EXPECT_FLOAT_EQ(s.scales[1], 0.5f);
  EXPECT_EQ(s.burn_in, 5u);

  EXPECT_THROW((void)ModelConfig::parse("[net]\nsteps=1,x\n[softmax]\n").lr_schedule(),
               MlError);
}

TEST(LrSchedule, AppliedDuringTraining) {
  // A poly schedule must change hyper().learning_rate across iterations.
  const auto cfg = ModelConfig::parse(
      "[net]\nbatch=4\nlearning_rate=0.1\npolicy=poly\nmax_batches=50\npower=1\n"
      "height=28\nwidth=28\nchannels=1\n"
      "[connected]\noutput=10\n\n[softmax]\n");
  Rng rng(1);
  Network net = build_network(cfg, rng);

  SynthDigitsOptions dopt;
  dopt.train_count = 32;
  dopt.test_count = 1;
  const auto d = make_synth_digits(dopt);
  std::vector<float> bx(4 * kDigitPixels), by(4 * kDigitClasses);
  Rng br(2);
  sample_batch(d.train, 4, br, bx.data(), by.data());

  (void)net.train_batch(bx.data(), by.data(), 4);
  const float lr0 = net.hyper().learning_rate;
  for (int i = 0; i < 25; ++i) (void)net.train_batch(bx.data(), by.data(), 4);
  EXPECT_LT(net.hyper().learning_rate, lr0);
}

// --- dropout ----------------------------------------------------------------------

TEST(Dropout, InferencePassThrough) {
  DropoutLayer layer(Shape{4, 1, 1}, 0.5f, 1);
  layer.prepare(2);
  const float in[] = {1, 2, 3, 4, 5, 6, 7, 8};
  layer.forward(in, 2, /*train=*/false);
  for (int i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(layer.output()[i], in[i]);
}

TEST(Dropout, TrainingZeroesAndScales) {
  DropoutLayer layer(Shape{1000, 1, 1}, 0.5f, 7);
  layer.prepare(1);
  std::vector<float> in(1000, 2.0f);
  layer.forward(in.data(), 1, /*train=*/true);
  int zeros = 0, scaled = 0;
  for (const float v : layer.output()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(v, 4.0f);  // 2.0 / (1 - 0.5)
      ++scaled;
    }
  }
  EXPECT_NEAR(zeros, 500, 60);
  EXPECT_EQ(zeros + scaled, 1000);
  // Expected value preserved (inverted dropout).
  const double sum = std::accumulate(layer.output().begin(), layer.output().end(), 0.0);
  EXPECT_NEAR(sum / 1000.0, 2.0, 0.3);
}

TEST(Dropout, BackwardUsesSameMask) {
  DropoutLayer layer(Shape{100, 1, 1}, 0.3f, 3);
  layer.prepare(1);
  std::vector<float> in(100, 1.0f);
  layer.forward(in.data(), 1, /*train=*/true);
  std::fill(layer.delta().begin(), layer.delta().end(), 1.0f);
  std::vector<float> in_delta(100, 0.0f);
  layer.backward(in.data(), in_delta.data(), 1);
  for (int i = 0; i < 100; ++i) {
    // Gradient flows exactly where the activation survived.
    if (layer.output()[i] == 0.0f) {
      EXPECT_FLOAT_EQ(in_delta[i], 0.0f);
    } else {
      EXPECT_GT(in_delta[i], 1.0f);
    }
  }
}

TEST(Dropout, RejectsBadProbability) {
  EXPECT_THROW(DropoutLayer(Shape{4, 1, 1}, 1.0f, 1), Error);
  EXPECT_THROW(DropoutLayer(Shape{4, 1, 1}, -0.1f, 1), Error);
  EXPECT_NO_THROW(DropoutLayer(Shape{4, 1, 1}, 0.0f, 1));
}

// --- average pooling ----------------------------------------------------------------

TEST(AvgPool, GlobalAveragesWholePlane) {
  AvgPoolLayer layer(Shape{2, 2, 2}, AvgPoolConfig{});
  EXPECT_EQ(layer.output_shape(), (Shape{2, 1, 1}));
  layer.prepare(1);
  const float in[] = {1, 2, 3, 4, 10, 20, 30, 40};
  layer.forward(in, 1, true);
  EXPECT_FLOAT_EQ(layer.output()[0], 2.5f);
  EXPECT_FLOAT_EQ(layer.output()[1], 25.0f);

  layer.delta()[0] = 4.0f;
  layer.delta()[1] = 8.0f;
  float in_delta[8] = {};
  layer.backward(in, in_delta, 1);
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(in_delta[i], 1.0f);
  for (int i = 4; i < 8; ++i) EXPECT_FLOAT_EQ(in_delta[i], 2.0f);
}

TEST(AvgPool, WindowedPooling) {
  AvgPoolLayer layer(Shape{1, 4, 4}, AvgPoolConfig{2, 2});
  EXPECT_EQ(layer.output_shape(), (Shape{1, 2, 2}));
  layer.prepare(1);
  std::vector<float> in(16);
  std::iota(in.begin(), in.end(), 0.0f);  // 0..15 row-major
  layer.forward(in.data(), 1, true);
  // Top-left window: {0,1,4,5} -> 2.5
  EXPECT_FLOAT_EQ(layer.output()[0], 2.5f);
  EXPECT_FLOAT_EQ(layer.output()[1], 4.5f);
  EXPECT_FLOAT_EQ(layer.output()[2], 10.5f);
  EXPECT_FLOAT_EQ(layer.output()[3], 12.5f);
}

TEST(AvgPool, GradientDistributesEqually) {
  AvgPoolLayer layer(Shape{1, 2, 2}, AvgPoolConfig{2, 2});
  layer.prepare(1);
  const float in[] = {1, 2, 3, 4};
  layer.forward(in, 1, true);
  layer.delta()[0] = 8.0f;
  float in_delta[4] = {};
  layer.backward(in, in_delta, 1);
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(in_delta[i], 2.0f);
}

TEST(AvgPool, RejectsBadWindow) {
  EXPECT_THROW(AvgPoolLayer(Shape{1, 2, 2}, AvgPoolConfig{4, 2}), MlError);
  EXPECT_THROW(AvgPoolLayer(Shape{1, 4, 4}, AvgPoolConfig{2, 0}), MlError);
}

// --- config integration ----------------------------------------------------------------

TEST(ConfigExtensions, BuildsDropoutAndAvgpool) {
  const auto cfg = ModelConfig::parse(
      "[net]\nbatch=4\nheight=28\nwidth=28\nchannels=1\n"
      "[convolutional]\nfilters=4\nstride=2\n\n"
      "[dropout]\nprobability=0.25\n\n"
      "[avgpool]\n\n"
      "[connected]\noutput=10\n\n[softmax]\n");
  Rng rng(1);
  Network net = build_network(cfg, rng);
  EXPECT_EQ(net.num_layers(), 5u);
  EXPECT_STREQ(net.layer(1).type(), "dropout");
  EXPECT_STREQ(net.layer(2).type(), "avgpool");
  EXPECT_EQ(net.layer(2).output_shape(), (Shape{4, 1, 1}));
}

TEST(ConfigExtensions, TrainingWithDropoutAndAvgpoolLearns) {
  const auto cfg = ModelConfig::parse(
      "[net]\nbatch=32\nlearning_rate=0.1\nheight=28\nwidth=28\nchannels=1\n"
      "[convolutional]\nfilters=8\nstride=2\n\n"
      "[convolutional]\nfilters=16\nstride=2\n\n"
      "[dropout]\nprobability=0.1\n\n"
      "[avgpool]\nsize=2\nstride=2\n\n"
      "[connected]\noutput=10\n\n[softmax]\n");
  Rng rng(3);
  Network net = build_network(cfg, rng);

  SynthDigitsOptions dopt;
  dopt.train_count = 1024;
  dopt.test_count = 256;
  const auto d = make_synth_digits(dopt);
  Rng br(4);
  std::vector<float> bx(32 * kDigitPixels), by(32 * kDigitClasses);
  float early = 0, late = 0;
  for (int it = 0; it < 120; ++it) {
    sample_batch(d.train, 32, br, bx.data(), by.data());
    const float loss = net.train_batch(bx.data(), by.data(), 32);
    ASSERT_TRUE(std::isfinite(loss));
    if (it < 10) early += loss;
    if (it >= 110) late += loss;
  }
  EXPECT_LT(late, early);
  const double acc =
      net.accuracy(d.test.x.values.data(), d.test.y.values.data(), d.test.size());
  EXPECT_GT(acc, 0.4);
}

}  // namespace
}  // namespace plinius::ml
