// Media-fault model and tiered repair: device primitives (bit rot, torn
// lines, poison), the seeded MediaFaultInjector, Romulus twin-copy repair
// helpers, mirror A/B replication + scrubbing, the arena scrubber, the
// PM-data corruption policy, and the persistent RecoveryLog.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/error.h"
#include "ml/config.h"
#include "ml/synth_digits.h"
#include "obs/registry.h"
#include "obs/stats_bridge.h"
#include "pm/device.h"
#include "pm/mediafault.h"
#include "plinius/checkpoint.h"
#include "plinius/metrics_log.h"
#include "plinius/mirror.h"
#include "plinius/platform.h"
#include "plinius/pm_data.h"
#include "plinius/scrub.h"
#include "romulus/romulus.h"

namespace plinius {
namespace {

using pm::kCacheLine;

ml::Dataset tiny_dataset(std::size_t rows = 32) {
  ml::SynthDigitsOptions opt;
  opt.train_count = rows;
  opt.test_count = 1;
  return make_synth_digits(opt).train;
}

ml::ModelConfig tiny_config() { return ml::make_cnn_config(2, 4, 8); }

crypto::AesGcm test_gcm() {
  Bytes key(16);
  Rng(77).fill(key.data(), key.size());
  return crypto::AesGcm(key);
}

// --- PmDevice media primitives ------------------------------------------------

class MediaDeviceTest : public ::testing::Test {
 protected:
  MediaDeviceTest() : dev_(clock_, 1 << 20, pm::PmLatencyModel::optane()) {}

  sim::Clock clock_;
  pm::PmDevice dev_;
};

TEST_F(MediaDeviceTest, FlipBitHitsBothImagesWhenLineClean) {
  const std::size_t off = 4096;
  const std::uint8_t before = dev_.data()[off];
  dev_.flip_bit(off, 3);
  EXPECT_EQ(dev_.data()[off], before ^ 0x08);
  EXPECT_EQ(dev_.persistent_image()[off], before ^ 0x08);
  EXPECT_EQ(dev_.stats().media_bit_flips, 1u);
}

TEST_F(MediaDeviceTest, DirtyCacheLineMasksMediaFault) {
  const std::size_t off = 4096;
  const std::uint8_t value = 0x5A;
  dev_.store(off, &value, 1);  // line now dirty: CPU cache holds the data
  dev_.flip_bit(off, 0);
  // The cached (volatile) copy is unaffected; the media (persistent) copy rots.
  EXPECT_EQ(dev_.data()[off], 0x5A);
  EXPECT_NE(dev_.persistent_image()[off], dev_.data()[off]);
}

TEST_F(MediaDeviceTest, TornLineGarblesSecondHalfOnly) {
  const std::size_t line = 37;
  std::uint8_t pattern[kCacheLine];
  std::memset(pattern, 0xAB, sizeof(pattern));
  dev_.store(line * kCacheLine, pattern, sizeof(pattern));
  dev_.flush(line * kCacheLine, kCacheLine, pm::FlushKind::kClflush);
  dev_.fence(pm::FenceKind::kSfence);

  dev_.tear_line(line, /*seed=*/123);
  for (std::size_t i = 0; i < kCacheLine / 2; ++i) {
    EXPECT_EQ(dev_.persistent_image()[line * kCacheLine + i], 0xAB) << i;
  }
  bool changed = false;
  for (std::size_t i = kCacheLine / 2; i < kCacheLine; ++i) {
    changed |= dev_.persistent_image()[line * kCacheLine + i] != 0xAB;
  }
  EXPECT_TRUE(changed);
  EXPECT_EQ(dev_.stats().media_torn_lines, 1u);
}

TEST_F(MediaDeviceTest, PoisonedLineReadThrowsUntilRewritten) {
  const std::size_t line = 5;
  dev_.poison_line(line, /*seed=*/9);
  EXPECT_TRUE(dev_.line_poisoned(line));
  EXPECT_EQ(dev_.poisoned_line_count(), 1u);

  std::uint8_t buf[8];
  try {
    dev_.load(line * kCacheLine + 8, buf, sizeof(buf));
    FAIL() << "poisoned read did not throw";
  } catch (const PmError& e) {
    EXPECT_NE(std::string(e.what()).find("poisoned"), std::string::npos);
  }
  // Reads elsewhere still work.
  dev_.load(0, buf, sizeof(buf));

  // A full-line rewrite (store + flush + fence) clears the poison, as
  // hardware does after ndctl clear-error / a full write-back.
  std::uint8_t fresh[kCacheLine] = {};
  dev_.store(line * kCacheLine, fresh, sizeof(fresh));
  dev_.flush(line * kCacheLine, kCacheLine, pm::FlushKind::kClwb);
  dev_.fence(pm::FenceKind::kSfence);
  EXPECT_FALSE(dev_.line_poisoned(line));
  EXPECT_EQ(dev_.poisoned_line_count(), 0u);
  EXPECT_EQ(dev_.stats().poison_cleared, 1u);
  dev_.load(line * kCacheLine, buf, sizeof(buf));  // no throw
}

TEST_F(MediaDeviceTest, ScrubRangeFindsPoisonAndChargesTraffic) {
  dev_.poison_line(10, 1);
  dev_.poison_line(12, 2);
  const auto t0 = clock_.now();
  const auto poisoned = dev_.scrub_range(8 * kCacheLine, 8 * kCacheLine);
  ASSERT_EQ(poisoned.size(), 2u);
  EXPECT_EQ(poisoned[0], 10u);
  EXPECT_EQ(poisoned[1], 12u);
  EXPECT_EQ(dev_.stats().scrub_bytes, 8 * kCacheLine);
  EXPECT_GT(clock_.now(), t0);  // ARS traffic costs simulated time
}

TEST_F(MediaDeviceTest, RestorePersistentClearsPoison) {
  const Bytes image = dev_.snapshot_persistent();
  dev_.poison_line(3, 7);
  dev_.restore_persistent(image);  // replaced media: poison gone
  EXPECT_EQ(dev_.poisoned_line_count(), 0u);
}

// --- MediaFaultInjector -------------------------------------------------------

TEST_F(MediaDeviceTest, InjectorIsDeterministicUnderSeed) {
  pm::MediaFaultRates rates{3.0, 2.0, 1.0};
  std::vector<pm::MediaFaultEvent> runs[2];
  for (int run = 0; run < 2; ++run) {
    sim::Clock clock;
    pm::PmDevice dev(clock, 1 << 20, pm::PmLatencyModel::optane());
    pm::MediaFaultInjector inj(dev, /*seed=*/4242);
    inj.add_region("arena", 0, dev.size(), rates);
    runs[run] = inj.unleash();
  }
  ASSERT_EQ(runs[0].size(), runs[1].size());
  for (std::size_t i = 0; i < runs[0].size(); ++i) {
    EXPECT_EQ(runs[0][i].kind, runs[1][i].kind);
    EXPECT_EQ(runs[0][i].offset, runs[1][i].offset);
    EXPECT_EQ(runs[0][i].region, runs[1][i].region);
  }
}

TEST_F(MediaDeviceTest, InjectorCountsScaleWithRegionAndRate) {
  // Integral expectation: 4 flips/MiB over 1 MiB = exactly 4 (no Bernoulli).
  pm::MediaFaultInjector inj(dev_, 7);
  inj.add_region("arena", 0, 1 << 20, pm::MediaFaultRates{4.0, 0.0, 0.0});
  const auto events = inj.unleash();
  EXPECT_EQ(events.size(), 4u);
  for (const auto& e : events) {
    EXPECT_EQ(e.kind, pm::MediaFaultKind::kBitFlip);
    EXPECT_LT(e.offset, dev_.size());
    EXPECT_FALSE(e.describe().empty());
  }
  EXPECT_EQ(dev_.stats().media_bit_flips, 4u);
  EXPECT_EQ(inj.events_applied(), 4u);
}

TEST_F(MediaDeviceTest, InjectorValidatesRegionsAndNames) {
  pm::MediaFaultInjector inj(dev_, 7);
  EXPECT_THROW(inj.add_region("oob", dev_.size() - 16, 64, {}), PmError);
  inj.add_region("ok", 0, 4096, {});
  EXPECT_THROW((void)inj.inject(pm::MediaFaultKind::kBitFlip, "nope"), Error);
  const auto e = inj.inject(pm::MediaFaultKind::kPoisonedLine, "ok");
  EXPECT_EQ(e.kind, pm::MediaFaultKind::kPoisonedLine);
  EXPECT_EQ(dev_.poisoned_line_count(), 1u);
}

// --- Romulus media-repair helpers ---------------------------------------------

class RomulusMediaTest : public ::testing::Test {
 protected:
  RomulusMediaTest()
      : dev_(clock_, 4 << 20, pm::PmLatencyModel::optane()),
        rom_(dev_, 0, 1 << 20, romulus::PwbPolicy::clflushopt_sfence(), true) {}

  sim::Clock clock_;
  pm::PmDevice dev_;
  romulus::Romulus rom_;
};

TEST_F(RomulusMediaTest, ValidateHeaderNamesCorruptField) {
  rom_.validate_header();  // clean passes
  dev_.flip_bit(0, 1);     // magic word
  try {
    rom_.validate_header();
    FAIL() << "corrupt magic not detected";
  } catch (const PmError& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
  }
}

TEST_F(RomulusMediaTest, ConstructorRefusesCorruptHeaderWithoutFormat) {
  dev_.flip_bit(3, 7);  // rot inside the magic
  EXPECT_THROW(romulus::Romulus(dev_, 0, 1 << 20,
                                romulus::PwbPolicy::clflushopt_sfence(), false),
               PmError);
  // format=true reformats the region and recovers the device.
  romulus::Romulus fresh(dev_, 0, 1 << 20,
                         romulus::PwbPolicy::clflushopt_sfence(), true);
  fresh.validate_header();
}

TEST_F(RomulusMediaTest, TwinRestoreRepairsAllocatorRot) {
  rom_.run_transaction([&] { (void)rom_.pmalloc(256); });
  // Rot the in-use accounting word in main; the back twin still has it.
  dev_.flip_bit(rom_.main_region_offset() + romulus::Romulus::alloc_meta_offset() + 16,
                5);
  EXPECT_THROW(rom_.validate_allocator(), PmError);
  EXPECT_GT(rom_.twin_divergence(), 0u);
  rom_.restore_main_from_back();
  rom_.validate_allocator();
  EXPECT_EQ(rom_.twin_divergence(), 0u);
}

TEST_F(RomulusMediaTest, RewriteBackHealsBackTwinRot) {
  rom_.run_transaction([&] { (void)rom_.pmalloc(256); });
  dev_.flip_bit(rom_.back_region_offset() + 64, 2);
  EXPECT_GT(rom_.twin_divergence(), 0u);
  rom_.validate_allocator();  // main is fine
  rom_.rewrite_back_from_main();
  EXPECT_EQ(rom_.twin_divergence(), 0u);
}

TEST_F(RomulusMediaTest, PmfreeErrorsNameOffsets) {
  rom_.run_transaction([&] {
    try {
      rom_.pmfree(rom_.main_size() + 1024);
      FAIL() << "out-of-heap pmfree accepted";
    } catch (const PmError& e) {
      EXPECT_NE(std::string(e.what()).find(std::to_string(rom_.main_size() + 1024)),
                std::string::npos);
    }
  });
  const std::size_t block = [&] {
    std::size_t b = 0;
    rom_.run_transaction([&] { b = rom_.pmalloc(128); });
    return b;
  }();
  // Rot the size word of the 16-byte block header so pmfree sees a block
  // that overruns the heap.
  dev_.flip_bit(rom_.main_region_offset() + block - 16 + 6, 4);
  rom_.run_transaction([&] { EXPECT_THROW(rom_.pmfree(block), PmError); });
}

TEST_F(RomulusMediaTest, ReadOutOfRangeNamesOffsets) {
  try {
    (void)rom_.read<std::uint64_t>(rom_.main_size() - 2);
    FAIL() << "out-of-range read accepted";
  } catch (const PmError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(std::to_string(rom_.main_size() - 2)), std::string::npos);
    EXPECT_NE(what.find(std::to_string(rom_.main_size())), std::string::npos);
  }
}

// --- Mirror A/B replication and scrubbing -------------------------------------

class MirrorMediaTest : public ::testing::Test {
 protected:
  MirrorMediaTest()
      : platform_(MachineProfile::emlsgx_pm(), 32 * 1024 * 1024),
        rom_(platform_.pm(), 0, 14 * 1024 * 1024,
             romulus::PwbPolicy::clflushopt_sfence(), true),
        net_(ml::build_network(tiny_config(), rng_)) {}

  /// Corrupts `len` bytes of main-relative extent [off, off+len) as a media
  /// fault (device coordinates; persistent + clean volatile image).
  void rot_extent(std::uint64_t off, std::uint64_t len) {
    for (std::uint64_t i = 0; i < len; i += 16) {
      platform_.pm().flip_bit(rom_.main_region_offset() + off + i, 1);
    }
  }

  Rng rng_{1};
  Platform platform_;
  romulus::Romulus rom_;
  ml::Network net_;
};

TEST_F(MirrorMediaTest, ReplicatedMirrorRecoversAndRepairsPrimaryRot) {
  MirrorModel mirror(rom_, platform_.enclave(), test_gcm(), MirrorOptions{true});
  mirror.alloc(net_);
  EXPECT_TRUE(mirror.replicated());
  net_.set_iterations(4);
  mirror.mirror_out(net_, 4);

  const auto extents = mirror.sealed_extents();
  ASSERT_FALSE(extents.empty());
  ASSERT_NE(extents[0].replica_off, 0u);
  rot_extent(extents[0].primary_off, 64);

  ml::Network other = ml::build_network(tiny_config(), rng_);
  EXPECT_EQ(mirror.mirror_in(other), 4u);
  EXPECT_EQ(mirror.stats().replica_repairs, 1u);
  // The corrupt primary was rewritten from the sibling: a scrub is clean.
  const auto report = mirror.scrub(other);
  EXPECT_TRUE(report.healthy());
  EXPECT_EQ(report.auth_failures, 0u);
}

TEST_F(MirrorMediaTest, ScrubRepairsRottenReplica) {
  MirrorModel mirror(rom_, platform_.enclave(), test_gcm(), MirrorOptions{true});
  mirror.alloc(net_);
  mirror.mirror_out(net_, 1);

  const auto extents = mirror.sealed_extents();
  rot_extent(extents[1].replica_off, 32);

  const auto before = rom_.device().stats().scrub_bytes;
  const auto report = mirror.scrub(net_);
  EXPECT_EQ(report.buffers_checked, extents.size());
  EXPECT_EQ(report.auth_failures, 1u);
  EXPECT_EQ(report.repaired, 1u);
  EXPECT_EQ(report.unrecoverable, 0u);
  EXPECT_GT(rom_.device().stats().scrub_bytes, before);
  // Second pass: clean.
  EXPECT_EQ(mirror.scrub(net_).auth_failures, 0u);
}

TEST_F(MirrorMediaTest, BothCopiesRottenIsUnrecoverableAtMirrorTier) {
  MirrorModel mirror(rom_, platform_.enclave(), test_gcm(), MirrorOptions{true});
  mirror.alloc(net_);
  mirror.mirror_out(net_, 1);

  const auto extents = mirror.sealed_extents();
  rot_extent(extents[0].primary_off, 32);
  rot_extent(extents[0].replica_off, 32);
  // But ALSO rot the back-region copies, else the twin would repair them.
  auto& dev = platform_.pm();
  for (std::uint64_t i = 0; i < 32; i += 16) {
    dev.flip_bit(rom_.back_region_offset() + extents[0].primary_off + i, 1);
    dev.flip_bit(rom_.back_region_offset() + extents[0].replica_off + i, 1);
  }

  const auto report = mirror.scrub(net_, /*repair=*/true);
  EXPECT_EQ(report.unrecoverable, 1u);
  EXPECT_FALSE(report.healthy());
  try {
    (void)mirror.mirror_in(net_);
    FAIL() << "mirror_in authenticated rotten copies";
  } catch (const CryptoError& e) {
    EXPECT_NE(std::string(e.what()).find("both A/B copies"), std::string::npos);
  }
}

TEST_F(MirrorMediaTest, UnreplicatedMirrorReportsNoReplica) {
  MirrorModel mirror(rom_, platform_.enclave(), test_gcm());
  mirror.alloc(net_);
  mirror.mirror_out(net_, 1);
  EXPECT_FALSE(mirror.replicated());
  const auto extents = mirror.sealed_extents();
  for (const auto& e : extents) EXPECT_EQ(e.replica_off, 0u);

  rot_extent(extents[0].primary_off, 32);
  const auto report = mirror.scrub(net_);
  EXPECT_EQ(report.unrecoverable, 1u);  // no sibling to repair from
}

TEST_F(MirrorMediaTest, DisposeReturnsEveryAllocation) {
  const std::size_t before = rom_.allocated_bytes();
  MirrorModel mirror(rom_, platform_.enclave(), test_gcm(), MirrorOptions{true});
  mirror.alloc(net_);
  mirror.mirror_out(net_, 3);
  EXPECT_GT(rom_.allocated_bytes(), before);

  mirror.dispose();
  EXPECT_EQ(rom_.allocated_bytes(), before);
  EXPECT_FALSE(mirror.exists());
  rom_.validate_allocator();
  // The region is immediately reusable.
  mirror.alloc(net_);
  EXPECT_TRUE(mirror.exists());
}

// --- Arena scrubber -----------------------------------------------------------

TEST_F(MirrorMediaTest, ArenaScrubCleanIsHealthy) {
  MirrorModel mirror(rom_, platform_.enclave(), test_gcm(), MirrorOptions{true});
  mirror.alloc(net_);
  mirror.mirror_out(net_, 2);
  const auto report = scrub_arena(rom_, &mirror, &net_, nullptr);
  EXPECT_TRUE(report.healthy());
  EXPECT_TRUE(report.mirror_present);
  EXPECT_FALSE(report.twin_restored);
}

TEST_F(MirrorMediaTest, ArenaScrubRestoresAllocatorFromTwin) {
  MirrorModel mirror(rom_, platform_.enclave(), test_gcm());
  mirror.alloc(net_);
  mirror.mirror_out(net_, 2);
  platform_.pm().flip_bit(
      rom_.main_region_offset() + romulus::Romulus::alloc_meta_offset() + 4, 2);
  const auto report = scrub_arena(rom_, &mirror, &net_, nullptr);
  EXPECT_TRUE(report.healthy());
  EXPECT_TRUE(report.twin_restored);
  rom_.validate_allocator();
}

TEST_F(MirrorMediaTest, ArenaScrubUsesTwinForUnreplicatedSeal) {
  MirrorModel mirror(rom_, platform_.enclave(), test_gcm());
  mirror.alloc(net_);
  mirror.mirror_out(net_, 2);
  const auto extents = mirror.sealed_extents();
  rot_extent(extents[0].primary_off, 48);

  const auto report = scrub_arena(rom_, &mirror, &net_, nullptr);
  EXPECT_TRUE(report.healthy());
  EXPECT_TRUE(report.twin_restored);
  ml::Network other = ml::build_network(tiny_config(), rng_);
  EXPECT_EQ(mirror.mirror_in(other), 2u);  // repaired in place
}

TEST_F(MirrorMediaTest, ArenaScrubReportsCorruptHeader) {
  platform_.pm().flip_bit(2, 0);  // region header magic
  const auto report = scrub_arena(rom_, nullptr, nullptr, nullptr);
  EXPECT_FALSE(report.header_ok);
  EXPECT_FALSE(report.healthy());
}

TEST_F(MirrorMediaTest, ArenaScrubResyncsDivergedBackTwin) {
  MirrorModel mirror(rom_, platform_.enclave(), test_gcm());
  mirror.alloc(net_);
  mirror.mirror_out(net_, 2);
  platform_.pm().flip_bit(rom_.back_region_offset() + 4096, 3);
  ASSERT_GT(rom_.twin_divergence(), 0u);
  const auto report = scrub_arena(rom_, &mirror, &net_, nullptr);
  EXPECT_TRUE(report.healthy());
  EXPECT_TRUE(report.twins_resynced);
  EXPECT_EQ(rom_.twin_divergence(), 0u);
}

// --- PmDataStore corruption policy --------------------------------------------

TEST_F(MirrorMediaTest, DataStoreThrowNamesRecordIndex) {
  PmDataStore data(rom_, platform_.enclave(), test_gcm());
  data.load(tiny_dataset());
  // Rot every record so the first draw is guaranteed to hit one.
  for (std::size_t r = 0; r < data.rows(); ++r) {
    rot_extent(data.records_offset() + r * data.record_bytes(), 16);
  }

  std::vector<float> x(32 * data.x_cols()), y(32 * data.y_cols());
  Rng rng(5);
  try {
    data.sample_batch(32, rng, x.data(), y.data());
    FAIL() << "rotten record authenticated";
  } catch (const CryptoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("record "), std::string::npos);
    EXPECT_NE(what.find("failed authentication"), std::string::npos);
  }
}

TEST_F(MirrorMediaTest, DataStoreResamplePolicySkipsRot) {
  PmDataStore data(rom_, platform_.enclave(), test_gcm());
  data.set_corrupt_policy(CorruptRecordPolicy::kResample);
  data.load(tiny_dataset());
  rot_extent(data.records_offset(), 16);                          // record 0
  rot_extent(data.records_offset() + 3 * data.record_bytes(), 16);  // record 3

  std::vector<float> x(32 * data.x_cols()), y(32 * data.y_cols());
  Rng rng(5);
  for (int round = 0; round < 4; ++round) {
    data.sample_batch(32, rng, x.data(), y.data());  // must not throw
  }
  EXPECT_GT(data.stats().corrupt_records, 0u);
  EXPECT_GT(data.stats().resampled, 0u);
  EXPECT_EQ(data.stats().batches, 4u);

  const auto corrupt = data.scrub_records();
  ASSERT_EQ(corrupt.size(), 2u);
  EXPECT_EQ(corrupt[0], 0u);
  EXPECT_EQ(corrupt[1], 3u);
}

TEST_F(MirrorMediaTest, PlaintextStoreScrubsClean) {
  PmDataStore data(rom_, platform_.enclave(), test_gcm(), /*encrypted=*/false);
  data.load(tiny_dataset());
  EXPECT_TRUE(data.scrub_records().empty());
}

// --- RecoveryLog --------------------------------------------------------------

TEST_F(MirrorMediaTest, RecoveryLogPersistsAndCompacts) {
  RecoveryLog log(rom_, platform_.enclave());
  EXPECT_FALSE(log.exists());
  log.create(4);
  EXPECT_TRUE(log.exists());
  EXPECT_EQ(log.capacity(), 4u);

  for (std::uint64_t i = 0; i < 6; ++i) {
    log.append({/*tier=*/2, /*resume_iteration=*/10 * i, /*replica_repairs=*/i,
                /*rungs_failed=*/1, /*flags=*/RecoveryRecord::kMirrorRebuilt});
  }
  // Capacity 4, six appends: compaction keeps the newest entries.
  ASSERT_LE(log.size(), 4u);
  const auto all = log.all();
  EXPECT_EQ(all.back().resume_iteration, 50u);
  EXPECT_EQ(all.back().flags, RecoveryRecord::kMirrorRebuilt);

  // Survives re-attach through a second Romulus handle.
  romulus::Romulus again(platform_.pm(), 0, 14 * 1024 * 1024,
                         romulus::PwbPolicy::clflushopt_sfence(), false);
  RecoveryLog reread(again, platform_.enclave());
  EXPECT_TRUE(reread.exists());
  EXPECT_EQ(reread.all().back().resume_iteration, 50u);
}

// --- attempt/completion accounting and root-slot validation -------------------

TEST_F(MirrorMediaTest, FailedSaveLeavesAttemptAheadOfCompletion) {
  MirrorModel mirror(rom_, platform_.enclave(), test_gcm());
  mirror.alloc(net_);

  // A net whose layer list does not match the persistent layout: the save
  // starts (attempt) but throws before anything commits.
  ml::Network other = ml::build_network(ml::make_cnn_config(3, 4, 8), rng_);
  EXPECT_THROW(mirror.mirror_out(other, 1), MlError);
  EXPECT_EQ(mirror.stats().save_attempts, 1u);
  EXPECT_EQ(mirror.stats().saves, 0u);

  // A clean save closes the gap again.
  mirror.mirror_out(net_, 1);
  EXPECT_EQ(mirror.stats().save_attempts, 2u);
  EXPECT_EQ(mirror.stats().saves, 1u);
}

TEST_F(MirrorMediaTest, FailedRestoreLeavesAttemptAheadOfCompletion) {
  MirrorModel mirror(rom_, platform_.enclave(), test_gcm());
  mirror.alloc(net_);
  net_.set_iterations(3);
  mirror.mirror_out(net_, 3);

  const auto extents = mirror.sealed_extents();
  ASSERT_FALSE(extents.empty());
  rot_extent(extents[0].primary_off, 64);  // unreplicated: no sibling to save it

  ml::Network other = ml::build_network(tiny_config(), rng_);
  EXPECT_THROW((void)mirror.mirror_in(other), CryptoError);
  EXPECT_EQ(mirror.stats().restore_attempts, 1u);
  EXPECT_EQ(mirror.stats().restores, 0u);
}

TEST_F(MirrorMediaTest, CorruptRootSlotOffsetSurfacesPmErrorNotOob) {
  MirrorModel mirror(rom_, platform_.enclave(), test_gcm());
  mirror.alloc(net_);
  mirror.mirror_out(net_, 2);
  EXPECT_TRUE(mirror.exists());

  // Media fault lands the root slot far outside the main region: every
  // root-following entry point reports a contextual PmError instead of
  // reading out of bounds.
  const std::uint64_t bad = rom_.main_size() + (1u << 20);
  rom_.run_transaction([&] { rom_.set_root(MirrorModel::kRootSlot, bad); });
  try {
    (void)mirror.exists();
    FAIL() << "corrupt root slot did not throw";
  } catch (const PmError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(std::to_string(bad)), std::string::npos) << what;
    EXPECT_NE(what.find("exceeds main size"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(rom_.main_size())), std::string::npos) << what;
  }

  // A root slot whose header would straddle the end of the region is just as
  // dead — the full sizeof(Header) extent must fit, not only the magic word.
  rom_.run_transaction([&] {
    rom_.set_root(MirrorModel::kRootSlot, rom_.main_size() - 4);
  });
  EXPECT_THROW((void)mirror.exists(), PmError);
  EXPECT_THROW((void)mirror.iteration(), PmError);
}

TEST_F(MirrorMediaTest, CheckpointRestoreFailureLeavesAttemptAheadOfCompletion) {
  SsdCheckpointer ckpt(platform_.ssd(), platform_.enclave(), test_gcm());
  EXPECT_THROW((void)ckpt.restore(net_), StorageError);  // nothing saved yet
  EXPECT_EQ(ckpt.stats().restore_attempts, 1u);
  EXPECT_EQ(ckpt.stats().restores, 0u);

  ckpt.save(net_);
  EXPECT_EQ(ckpt.stats().save_attempts, 1u);
  EXPECT_EQ(ckpt.stats().saves, 1u);
  EXPECT_EQ(ckpt.restore(net_), net_.iterations());
  EXPECT_EQ(ckpt.stats().restore_attempts, 2u);
  EXPECT_EQ(ckpt.stats().restores, 1u);
}

TEST_F(MirrorMediaTest, StatsBridgePublishesAttemptAndPipelineSeries) {
  MirrorModel mirror(rom_, platform_.enclave(), test_gcm());
  mirror.alloc(net_);
  sgx::ChargeStream stream = platform_.enclave().open_stream(1);
  mirror.begin_async_save(net_, 1, stream);
  ASSERT_TRUE(mirror.complete_async_save(stream));

  obs::Registry reg;
  obs::publish(reg, mirror.stats(), {});
  EXPECT_EQ(reg.counter("mirror.save_attempts"), 1u);
  EXPECT_EQ(reg.counter("mirror.saves"), 1u);
  EXPECT_EQ(reg.counter("mirror.async_saves"), 1u);
  EXPECT_EQ(reg.counter("mirror.restore_attempts"), 0u);
  EXPECT_GE(reg.gauge("mirror.encrypt_ns"), 0.0);
  EXPECT_GE(reg.gauge("mirror.pipeline_stall_ns"), 0.0);

  obs::publish(reg, platform_.enclave().stats(), {});
  EXPECT_EQ(reg.counter("enclave.stream_submits"), 1u);

  SsdCheckpointer ckpt(platform_.ssd(), platform_.enclave(), test_gcm());
  ckpt.save(net_);
  obs::publish(reg, ckpt.stats(), {});
  EXPECT_EQ(reg.counter("checkpoint.save_attempts"), 1u);
  EXPECT_EQ(reg.counter("checkpoint.restore_attempts"), 0u);
}

}  // namespace
}  // namespace plinius
