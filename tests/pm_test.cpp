#include <gtest/gtest.h>

#include <cstring>

#include "common/clock.h"
#include "common/error.h"
#include "common/rng.h"
#include "pm/device.h"

namespace plinius::pm {
namespace {

class PmDeviceTest : public ::testing::Test {
 protected:
  sim::Clock clock_;
  PmDevice dev_{clock_, 64 * 1024, PmLatencyModel::optane(), /*crash_seed=*/1};
};

TEST_F(PmDeviceTest, SizeRoundedToCacheLine) {
  sim::Clock c;
  PmDevice d(c, 100, PmLatencyModel::optane());
  EXPECT_EQ(d.size(), 128u);
}

TEST_F(PmDeviceTest, RejectsZeroSize) {
  sim::Clock c;
  EXPECT_THROW(PmDevice(c, 0, PmLatencyModel::optane()), Error);
}

TEST_F(PmDeviceTest, StoreVisibleThroughLoad) {
  const char msg[] = "hello pm";
  dev_.store(128, msg, sizeof(msg));
  char back[sizeof(msg)];
  dev_.load(128, back, sizeof(back));
  EXPECT_STREQ(back, msg);
}

TEST_F(PmDeviceTest, OutOfRangeAccessThrows) {
  char byte = 0;
  EXPECT_THROW(dev_.store(dev_.size(), &byte, 1), PmError);
  EXPECT_THROW(dev_.store(dev_.size() - 1, &byte, 2), PmError);
  EXPECT_THROW(dev_.load(dev_.size(), &byte, 1), PmError);
  EXPECT_NO_THROW(dev_.store(dev_.size() - 1, &byte, 1));
}

TEST_F(PmDeviceTest, UnflushedStoreLostOnCrash) {
  const std::uint32_t v = 0xdeadbeef;
  dev_.store(0, &v, sizeof(v));
  dev_.crash();
  std::uint32_t back = 1;
  dev_.load(0, &back, sizeof(back));
  EXPECT_EQ(back, 0u);  // device starts zeroed; the store never persisted
}

TEST_F(PmDeviceTest, ClflushPersistsWithoutFence) {
  const std::uint32_t v = 0xdeadbeef;
  dev_.store(0, &v, sizeof(v));
  dev_.flush(0, sizeof(v), FlushKind::kClflush);
  // No fence: clflush is strongly ordered (the paper's clflush+nop combo).
  dev_.crash();
  std::uint32_t back = 0;
  dev_.load(0, &back, sizeof(back));
  EXPECT_EQ(back, v);
}

TEST_F(PmDeviceTest, ClflushOptRequiresFence) {
  // Without the fence, persistence of a clflushopt'd line is *not guaranteed*
  // (it persists with probability 1/2 in the model). With the fence it is.
  const std::uint64_t v = 0x1122334455667788ULL;
  dev_.store(0, &v, sizeof(v));
  dev_.flush(0, sizeof(v), FlushKind::kClflushOpt);
  dev_.fence(FenceKind::kSfence);
  dev_.crash();
  std::uint64_t back = 0;
  dev_.load(0, &back, sizeof(back));
  EXPECT_EQ(back, v);
}

TEST(PmCrash, UnfencedClflushOptSometimesLost) {
  // Across many seeds, an unfenced clflushopt must be lost at least once and
  // survive at least once — that nondeterminism is what fences eliminate.
  int survived = 0, lost = 0;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    sim::Clock clock;
    PmDevice dev(clock, 4096, PmLatencyModel::optane(), seed);
    const std::uint32_t v = 0xabcd1234;
    dev.store(0, &v, sizeof(v));
    dev.flush(0, sizeof(v), FlushKind::kClflushOpt);
    dev.crash();  // no fence!
    std::uint32_t back = 0;
    dev.load(0, &back, sizeof(back));
    (back == v ? survived : lost)++;
  }
  EXPECT_GT(survived, 0);
  EXPECT_GT(lost, 0);
}

TEST_F(PmDeviceTest, StoreAfterFlushBeforeFencePersistsFlushedContent) {
  // The fence persists what was flushed, not what was stored afterwards.
  const std::uint32_t first = 0x11111111, second = 0x22222222;
  dev_.store(0, &first, sizeof(first));
  dev_.flush(0, sizeof(first), FlushKind::kClflushOpt);
  dev_.store(0, &second, sizeof(second));  // dirties the line again
  dev_.fence(FenceKind::kSfence);
  dev_.crash();
  std::uint32_t back = 0;
  dev_.load(0, &back, sizeof(back));
  EXPECT_EQ(back, first);
}

TEST_F(PmDeviceTest, ReflushAfterStoreUpdatesPending) {
  const std::uint32_t first = 0x11111111, second = 0x22222222;
  dev_.store(0, &first, sizeof(first));
  dev_.flush(0, sizeof(first), FlushKind::kClflushOpt);
  dev_.store(0, &second, sizeof(second));
  dev_.flush(0, sizeof(second), FlushKind::kClflushOpt);  // newest content wins
  dev_.fence(FenceKind::kSfence);
  dev_.crash();
  std::uint32_t back = 0;
  dev_.load(0, &back, sizeof(back));
  EXPECT_EQ(back, second);
}

TEST_F(PmDeviceTest, CrashRestoresVolatileFromPersistent) {
  const std::uint32_t committed = 0xAAAAAAAA;
  dev_.store(64, &committed, sizeof(committed));
  dev_.flush(64, sizeof(committed), FlushKind::kClflush);

  const std::uint32_t uncommitted = 0xBBBBBBBB;
  dev_.store(64, &uncommitted, sizeof(uncommitted));
  dev_.crash();

  std::uint32_t back = 0;
  dev_.load(64, &back, sizeof(back));
  EXPECT_EQ(back, committed);
}

TEST_F(PmDeviceTest, QuiescentTracksCleanliness) {
  EXPECT_TRUE(dev_.quiescent());
  const std::uint8_t b = 7;
  dev_.store(0, &b, 1);
  EXPECT_FALSE(dev_.quiescent());
  dev_.flush(0, 1, FlushKind::kClflushOpt);
  EXPECT_FALSE(dev_.quiescent());  // pending, not yet fenced
  dev_.fence(FenceKind::kSfence);
  EXPECT_TRUE(dev_.quiescent());
}

TEST_F(PmDeviceTest, MultiLineRangeFlush) {
  std::uint8_t buf[1000];
  Rng(5).fill(buf, sizeof(buf));
  dev_.store(30, buf, sizeof(buf));  // crosses 17 cache lines, misaligned
  dev_.flush(30, sizeof(buf), FlushKind::kClflushOpt);
  dev_.fence(FenceKind::kSfence);
  dev_.crash();
  std::uint8_t back[1000];
  dev_.load(30, back, sizeof(back));
  EXPECT_EQ(0, memcmp(buf, back, sizeof(buf)));
}

TEST_F(PmDeviceTest, PersistentImagePeek) {
  const std::uint32_t v = 0x5555AAAA;
  dev_.store(0, &v, sizeof(v));
  std::uint32_t persisted = 1;
  std::memcpy(&persisted, dev_.persistent_image(), sizeof(persisted));
  EXPECT_EQ(persisted, 0u);  // not yet flushed
  dev_.flush(0, sizeof(v), FlushKind::kClflush);
  std::memcpy(&persisted, dev_.persistent_image(), sizeof(persisted));
  EXPECT_EQ(persisted, v);
}

TEST_F(PmDeviceTest, StatsCountOperations) {
  const std::uint8_t b[128] = {};
  dev_.store(0, b, sizeof(b));
  dev_.flush(0, sizeof(b), FlushKind::kClflushOpt);
  dev_.fence(FenceKind::kSfence);
  const auto& s = dev_.stats();
  EXPECT_EQ(s.stores, 1u);
  EXPECT_EQ(s.bytes_stored, 128u);
  EXPECT_EQ(s.flushes, 1u);
  EXPECT_EQ(s.lines_flushed, 2u);
  EXPECT_EQ(s.fences, 1u);
  dev_.reset_stats();
  EXPECT_EQ(dev_.stats().stores, 0u);
}

TEST_F(PmDeviceTest, TimeAdvancesWithOperations) {
  const auto t0 = clock_.now();
  std::uint8_t buf[4096];
  Rng(1).fill(buf, sizeof(buf));
  dev_.store(0, buf, sizeof(buf));
  const auto t1 = clock_.now();
  EXPECT_GT(t1, t0);
  dev_.flush(0, sizeof(buf), FlushKind::kClflushOpt);
  dev_.fence(FenceKind::kSfence);
  const auto t2 = clock_.now();
  EXPECT_GT(t2, t1);
}

TEST_F(PmDeviceTest, ClflushCostsMoreThanClflushOptPerLine) {
  std::uint8_t buf[4096];
  Rng(2).fill(buf, sizeof(buf));

  sim::Clock c1, c2;
  PmDevice d1(c1, 8192, PmLatencyModel::optane());
  PmDevice d2(c2, 8192, PmLatencyModel::optane());
  d1.store(0, buf, sizeof(buf));
  d2.store(0, buf, sizeof(buf));

  sim::Stopwatch s1(c1);
  d1.flush(0, sizeof(buf), FlushKind::kClflush);
  d1.fence(FenceKind::kNop);
  const auto clflush_time = s1.elapsed();

  sim::Stopwatch s2(c2);
  d2.flush(0, sizeof(buf), FlushKind::kClflushOpt);
  d2.fence(FenceKind::kSfence);
  const auto clflushopt_time = s2.elapsed();

  EXPECT_GT(clflush_time, clflushopt_time);
}

TEST_F(PmDeviceTest, ClwbBehavesLikeClflushOptForPersistence) {
  const std::uint64_t v = 0x77;
  dev_.store(0, &v, sizeof(v));
  dev_.flush(0, sizeof(v), FlushKind::kClwb);
  EXPECT_FALSE(dev_.quiescent());  // needs the fence
  dev_.fence(FenceKind::kSfence);
  EXPECT_TRUE(dev_.quiescent());
  dev_.crash();
  std::uint64_t back = 0;
  dev_.load(0, &back, sizeof(back));
  EXPECT_EQ(back, v);
}

TEST_F(PmDeviceTest, ClwbSlightlyCheaperThanClflushOpt) {
  std::uint8_t buf[4096];
  Rng(9).fill(buf, sizeof(buf));
  sim::Clock c1, c2;
  PmDevice d1(c1, 8192, PmLatencyModel::optane());
  PmDevice d2(c2, 8192, PmLatencyModel::optane());
  d1.store(0, buf, sizeof(buf));
  d2.store(0, buf, sizeof(buf));
  sim::Stopwatch s1(c1);
  d1.flush(0, sizeof(buf), FlushKind::kClwb);
  const auto clwb_ns = s1.elapsed();
  sim::Stopwatch s2(c2);
  d2.flush(0, sizeof(buf), FlushKind::kClflushOpt);
  EXPECT_LT(clwb_ns, s2.elapsed());
}

TEST_F(PmDeviceTest, FlushingCleanLinesIsFree) {
  dev_.flush(0, 4096, FlushKind::kClflushOpt);
  EXPECT_EQ(dev_.stats().lines_flushed, 0u);
}

TEST_F(PmDeviceTest, SaveAndLoadImage) {
  const char msg[] = "persisted across processes";
  dev_.store(256, msg, sizeof(msg));
  dev_.flush(256, sizeof(msg), FlushKind::kClflush);
  const std::string path = ::testing::TempDir() + "/pm_image.bin";
  dev_.save_image(path);

  sim::Clock c2;
  PmDevice dev2(c2, dev_.size(), PmLatencyModel::optane());
  dev2.load_image(path);
  char back[sizeof(msg)];
  dev2.load(256, back, sizeof(back));
  EXPECT_STREQ(back, msg);
  std::remove(path.c_str());
}

TEST_F(PmDeviceTest, LoadImageMissingFileThrows) {
  EXPECT_THROW(dev_.load_image("/nonexistent/pm_image.bin"), PmError);
}

TEST_F(PmDeviceTest, LoadImageRejectsSizeMismatchBothWays) {
  const char msg[] = "sized image";
  dev_.store(0, msg, sizeof(msg));
  dev_.flush(0, sizeof(msg), FlushKind::kClflush);
  const std::string path = ::testing::TempDir() + "/pm_image_sized.bin";
  dev_.save_image(path);

  sim::Clock c2;
  PmDevice smaller(c2, dev_.size() / 2, PmLatencyModel::optane());
  EXPECT_THROW(smaller.load_image(path), PmError);  // image larger than arena

  sim::Clock c3;
  PmDevice bigger(c3, dev_.size() * 2, PmLatencyModel::optane());
  EXPECT_THROW(bigger.load_image(path), PmError);  // image smaller than arena

  // An exact match still loads.
  sim::Clock c4;
  PmDevice exact(c4, dev_.size(), PmLatencyModel::optane());
  exact.load_image(path);
  char back[sizeof(msg)];
  exact.load(0, back, sizeof(back));
  EXPECT_STREQ(back, msg);
  std::remove(path.c_str());
}

TEST_F(PmDeviceTest, SnapshotRestoreRoundTrip) {
  const std::uint64_t v = 0xDEADBEEF;
  dev_.store(64, &v, sizeof(v));
  dev_.flush(64, sizeof(v), FlushKind::kClflush);
  const Bytes snap = dev_.snapshot_persistent();
  EXPECT_EQ(snap.size(), dev_.size());

  const std::uint64_t w = 0xFACE;
  dev_.store(64, &w, sizeof(w));
  dev_.flush(64, sizeof(w), FlushKind::kClflush);

  dev_.restore_persistent(snap);
  std::uint64_t back = 0;
  dev_.load(64, &back, sizeof(back));
  EXPECT_EQ(back, v);

  Bytes wrong(dev_.size() + 1);
  EXPECT_THROW(dev_.restore_persistent(wrong), PmError);
}

// Property-style sweep: random store/flush/fence sequences; after a crash,
// every line must equal either its last fenced content or (for pending
// lines) one of the two legal values — never garbage.
class PmRandomizedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PmRandomizedTest, CrashNeverYieldsTornState) {
  sim::Clock clock;
  constexpr std::size_t kSize = 16 * 1024;
  PmDevice dev(clock, kSize, PmLatencyModel::optane(), GetParam());
  Rng rng(GetParam() * 1000 + 17);

  // Shadow model: for each line, the set of values that may legally survive.
  constexpr std::size_t kLines = kSize / kCacheLine;
  std::vector<std::vector<std::vector<std::uint8_t>>> legal(kLines);
  std::vector<std::vector<std::uint8_t>> current(kLines,
                                                 std::vector<std::uint8_t>(kCacheLine, 0));
  for (std::size_t l = 0; l < kLines; ++l) {
    legal[l].push_back(current[l]);  // initial zeroes are persistent
  }

  for (int op = 0; op < 300; ++op) {
    const std::size_t line = rng.below(kLines);
    const int action = static_cast<int>(rng.below(3));
    if (action == 0) {
      std::vector<std::uint8_t> data(kCacheLine);
      rng.fill(data.data(), data.size());
      dev.store(line * kCacheLine, data.data(), data.size());
      current[line] = data;
    } else if (action == 1) {
      dev.flush(line * kCacheLine, kCacheLine, FlushKind::kClflushOpt);
      // Until the fence, both old and new content are legal outcomes.
      legal[line].push_back(current[line]);
    } else {
      dev.fence(FenceKind::kSfence);
      // After a fence every previously flushed line's newest flushed value
      // is the only legal one; approximate by keeping the last pushed value
      // of every line that has more than one candidate.
      for (auto& cands : legal) {
        if (cands.size() > 1) cands.erase(cands.begin(), cands.end() - 1);
      }
    }
  }
  dev.crash();

  for (std::size_t l = 0; l < kLines; ++l) {
    const std::uint8_t* actual = dev.persistent_image() + l * kCacheLine;
    bool matched = false;
    for (const auto& cand : legal[l]) {
      if (std::memcmp(actual, cand.data(), kCacheLine) == 0) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched) << "line " << l << " has torn/illegal content, seed "
                         << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PmRandomizedTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

}  // namespace
}  // namespace plinius::pm
