#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/error.h"
#include "sgx/attestation.h"
#include "sgx/enclave.h"
#include "sgx/model.h"

namespace plinius::sgx {
namespace {

class EnclaveTest : public ::testing::Test {
 protected:
  sim::Clock clock_;
  EnclaveRuntime enclave_{clock_, SgxCostModel::hardware(), "test-enclave", 0xABCD};
};

TEST_F(EnclaveTest, EcallChargesTwoTransitions) {
  const double expected = 2 * 13100.0 / 3.8;
  sim::Stopwatch sw(clock_);
  enclave_.charge_ecall();
  EXPECT_NEAR(sw.elapsed(), expected, 1.0);
  EXPECT_EQ(enclave_.stats().ecalls, 1u);
}

TEST_F(EnclaveTest, SimulationModeTransitionsAreCheap) {
  sim::Clock clock;
  EnclaveRuntime sim_enclave(clock, SgxCostModel::simulation(), "sim");
  sim::Stopwatch sw(clock);
  sim_enclave.charge_ecall();
  const auto sim_cost = sw.elapsed();

  sim::Stopwatch sw2(clock_);
  enclave_.charge_ecall();
  EXPECT_GT(sw2.elapsed(), 20 * sim_cost);
}

TEST_F(EnclaveTest, OcallIoChunksAndCharges) {
  const std::size_t bytes = 100 * 1024;  // 100 KiB over 16 KiB chunks = 7 ocalls
  const std::size_t calls = enclave_.charge_ocall_io(bytes, /*into_enclave=*/true);
  EXPECT_EQ(calls, 7u);
  EXPECT_EQ(enclave_.stats().ocalls, 7u);
  EXPECT_EQ(enclave_.stats().bytes_copied_in, bytes);
}

TEST_F(EnclaveTest, MemoryAccounting) {
  EXPECT_EQ(enclave_.enclave_memory_used(), 0u);
  enclave_.add_enclave_memory(1000);
  enclave_.add_enclave_memory(500);
  EXPECT_EQ(enclave_.enclave_memory_used(), 1500u);
  enclave_.release_enclave_memory(1500);
  EXPECT_EQ(enclave_.enclave_memory_used(), 0u);
  EXPECT_THROW(enclave_.release_enclave_memory(1), Error);
}

TEST_F(EnclaveTest, EnclaveBufferIsRaii) {
  {
    EnclaveBuffer buf(enclave_, 4096);
    EXPECT_EQ(enclave_.enclave_memory_used(), 4096u);
  }
  EXPECT_EQ(enclave_.enclave_memory_used(), 0u);
}

TEST_F(EnclaveTest, NoFaultsBelowEpcLimit) {
  enclave_.add_enclave_memory(50 * 1024 * 1024);
  EXPECT_EQ(enclave_.fault_probability(), 0.0);
  sim::Stopwatch sw(clock_);
  enclave_.touch_enclave(10 * 1024 * 1024);
  EXPECT_EQ(sw.elapsed(), 0.0);
}

TEST_F(EnclaveTest, FaultProbabilityRampsToThrashing) {
  const std::size_t epc = SgxCostModel::hardware().epc_usable_bytes;
  // Just over the limit: partial faulting (ramp to full thrash at +15%).
  enclave_.add_enclave_memory(epc + epc * 3 / 100);
  EXPECT_NEAR(enclave_.fault_probability(), 0.2, 0.01);
  enclave_.release_enclave_memory(enclave_.enclave_memory_used());
  // Sequential sweeps defeat LRU: 2x the EPC faults on every page.
  enclave_.add_enclave_memory(2 * epc);
  EXPECT_NEAR(enclave_.fault_probability(), 1.0, 1e-9);
}

TEST_F(EnclaveTest, TouchBeyondEpcChargesPageFaults) {
  const std::size_t epc = SgxCostModel::hardware().epc_usable_bytes;
  enclave_.add_enclave_memory(2 * epc);
  sim::Stopwatch sw(clock_);
  enclave_.touch_enclave(8 * 1024 * 1024);
  // 2048 pages x 1.0 fault prob x page_fault_ns.
  EXPECT_NEAR(sw.elapsed(), 2048 * SgxCostModel::hardware().page_fault_ns, 1e5);
  EXPECT_GT(enclave_.stats().epc_faults, 0u);
}

TEST_F(EnclaveTest, SmallTouchFaultAccountingIsUnbiased) {
  const std::size_t epc = SgxCostModel::hardware().epc_usable_bytes;
  // 3% over the EPC: fault probability 0.2, so a single-page touch charges
  // 0.2 faults — per-call rounding would either drop every one of them or
  // count none at all. The residual must carry across calls instead.
  enclave_.add_enclave_memory(epc + epc * 3 / 100);
  ASSERT_NEAR(enclave_.fault_probability(), 0.2, 0.01);
  enclave_.reset_stats();
  for (int i = 0; i < 50; ++i) enclave_.touch_enclave(4096);
  // 50 x ~0.2 = ~10 faults; allow one for the floor-with-carry boundary.
  EXPECT_NEAR(static_cast<double>(enclave_.stats().epc_faults), 10.0, 1.0);
  EXPECT_GT(enclave_.stats().epc_faults, 0u);

  // reset_stats clears the fractional residual too: one small touch after a
  // reset must not tick a fault carried over from before.
  enclave_.reset_stats();
  enclave_.touch_enclave(4096);
  EXPECT_EQ(enclave_.stats().epc_faults, 0u);
}

TEST_F(EnclaveTest, SimulationModeNeverFaults) {
  sim::Clock clock;
  EnclaveRuntime sim_enclave(clock, SgxCostModel::simulation(), "sim");
  sim_enclave.add_enclave_memory(1_GiB);
  EXPECT_EQ(sim_enclave.fault_probability(), 0.0);
}

TEST_F(EnclaveTest, CopyInSlowerThanCopyOut) {
  sim::Stopwatch sw(clock_);
  enclave_.copy_into_enclave(1_MiB);
  const auto in_ns = sw.elapsed();
  sw.restart();
  enclave_.copy_out_of_enclave(1_MiB);
  EXPECT_GT(in_ns, sw.elapsed());
}

TEST_F(EnclaveTest, EnclaveCryptoSlowerThanNative) {
  sim::Stopwatch sw(clock_);
  enclave_.charge_crypto(1_MiB);
  const auto enclave_ns = sw.elapsed();
  sw.restart();
  enclave_.charge_native_crypto(1_MiB);
  EXPECT_GT(enclave_ns, sw.elapsed());
}

TEST_F(EnclaveTest, ReadRandDeterministicPerPlatform) {
  sim::Clock c1, c2;
  EnclaveRuntime e1(c1, SgxCostModel::hardware(), "x", 7);
  EnclaveRuntime e2(c2, SgxCostModel::hardware(), "x", 7);
  Bytes a(32), b(32);
  e1.read_rand(a);
  e2.read_rand(b);
  EXPECT_EQ(a, b);
  e1.read_rand(a);
  EXPECT_NE(a, b);  // stream advances
}

TEST_F(EnclaveTest, MeasurementDependsOnEnclaveName) {
  sim::Clock c;
  EnclaveRuntime other(c, SgxCostModel::hardware(), "other-enclave", 0xABCD);
  EXPECT_NE(enclave_.measurement(), other.measurement());
}

// --- sealing -----------------------------------------------------------------

TEST_F(EnclaveTest, SealUnsealRoundTrip) {
  const Bytes secret = {1, 2, 3, 4, 5};
  const Bytes sealed = enclave_.seal_data(secret);
  EXPECT_NE(sealed, secret);
  EXPECT_EQ(enclave_.unseal_data(sealed), secret);
}

TEST_F(EnclaveTest, UnsealFailsAcrossPlatforms) {
  const Bytes secret = {9, 8, 7};
  const Bytes sealed = enclave_.seal_data(secret);
  sim::Clock c;
  EnclaveRuntime other_platform(c, SgxCostModel::hardware(), "test-enclave", 0xBEEF);
  EXPECT_THROW((void)other_platform.unseal_data(sealed), CryptoError);
}

TEST_F(EnclaveTest, UnsealFailsAcrossEnclaves) {
  const Bytes secret = {9, 8, 7};
  const Bytes sealed = enclave_.seal_data(secret);
  sim::Clock c;
  EnclaveRuntime other_enclave(c, SgxCostModel::hardware(), "evil-enclave", 0xABCD);
  EXPECT_THROW((void)other_enclave.unseal_data(sealed), CryptoError);
}

TEST_F(EnclaveTest, MrSignerPolicyAllowsUpgradedEnclave) {
  // v2 of the enclave (different MRENCLAVE, same signer) can unseal data
  // sealed under kMrSigner but not under kMrEnclave.
  const Bytes secret = {1, 2, 3};
  const Bytes by_enclave = enclave_.seal_data(secret, SealPolicy::kMrEnclave);
  const Bytes by_signer = enclave_.seal_data(secret, SealPolicy::kMrSigner);

  sim::Clock c;
  EnclaveRuntime v2(c, SgxCostModel::hardware(), "test-enclave-v2", 0xABCD,
                    "plinius-vendor");
  EXPECT_NE(v2.measurement(), enclave_.measurement());
  EXPECT_EQ(v2.signer(), enclave_.signer());
  EXPECT_THROW((void)v2.unseal_data(by_enclave, SealPolicy::kMrEnclave), CryptoError);
  EXPECT_EQ(v2.unseal_data(by_signer, SealPolicy::kMrSigner), secret);
}

TEST_F(EnclaveTest, MrSignerPolicyRejectsOtherVendor) {
  const Bytes secret = {4, 5, 6};
  const Bytes sealed = enclave_.seal_data(secret, SealPolicy::kMrSigner);
  sim::Clock c;
  EnclaveRuntime other_vendor(c, SgxCostModel::hardware(), "test-enclave", 0xABCD,
                              "evil-vendor");
  EXPECT_THROW((void)other_vendor.unseal_data(sealed, SealPolicy::kMrSigner),
               CryptoError);
  // Policies are not interchangeable either.
  EXPECT_THROW((void)enclave_.unseal_data(sealed, SealPolicy::kMrEnclave), CryptoError);
}

TEST_F(EnclaveTest, SameEnclaveSamePlatformUnsealsAfterRestart) {
  const Bytes secret = {42};
  const Bytes sealed = enclave_.seal_data(secret);
  sim::Clock c;
  EnclaveRuntime restarted(c, SgxCostModel::hardware(), "test-enclave", 0xABCD);
  EXPECT_EQ(restarted.unseal_data(sealed), secret);
}

// --- remote attestation & key provisioning ------------------------------------

class AttestationTest : public ::testing::Test {
 protected:
  AttestationTest() {
    service_.register_platform(0xABCD);
    training_key_.assign(16, 0);
    Rng(99).fill(training_key_.data(), training_key_.size());
  }

  sim::Clock clock_;
  EnclaveRuntime enclave_{clock_, SgxCostModel::hardware(), "plinius", 0xABCD};
  AttestationService service_;
  Bytes training_key_;
};

TEST_F(AttestationTest, FullProvisioningFlow) {
  DataOwner owner(service_, enclave_.measurement(), training_key_, 1);
  EnclaveAttestationSession session(enclave_);

  const Nonce challenge = owner.make_challenge();
  const Report report = session.respond(challenge);
  EXPECT_TRUE(service_.verify(report));

  const Bytes wrapped = owner.wrap_key_for(report);
  EXPECT_EQ(session.receive_wrapped_key(wrapped), training_key_);
}

TEST_F(AttestationTest, WrongMeasurementRejected) {
  Measurement wrong{};
  wrong.fill(0x11);
  DataOwner owner(service_, wrong, training_key_, 1);
  EnclaveAttestationSession session(enclave_);
  const Report report = session.respond(owner.make_challenge());
  EXPECT_THROW((void)owner.wrap_key_for(report), SgxError);
}

TEST_F(AttestationTest, UnregisteredPlatformRejected) {
  sim::Clock c;
  EnclaveRuntime rogue(c, SgxCostModel::hardware(), "plinius", 0x6666);  // not registered
  DataOwner owner(service_, rogue.measurement(), training_key_, 1);
  EnclaveAttestationSession session(rogue);
  const Report report = session.respond(owner.make_challenge());
  EXPECT_FALSE(service_.verify(report));
  EXPECT_THROW((void)owner.wrap_key_for(report), SgxError);
}

TEST_F(AttestationTest, ForgedReportMacRejected) {
  DataOwner owner(service_, enclave_.measurement(), training_key_, 1);
  EnclaveAttestationSession session(enclave_);
  Report report = session.respond(owner.make_challenge());
  report.mac[0] ^= 0x01;
  EXPECT_FALSE(service_.verify(report));
}

TEST_F(AttestationTest, TamperedWrappedKeyRejected) {
  DataOwner owner(service_, enclave_.measurement(), training_key_, 1);
  EnclaveAttestationSession session(enclave_);
  const Report report = session.respond(owner.make_challenge());
  Bytes wrapped = owner.wrap_key_for(report);
  wrapped[wrapped.size() / 2] ^= 0xFF;
  EXPECT_THROW((void)session.receive_wrapped_key(wrapped), CryptoError);
}

TEST_F(AttestationTest, KeyBeforeChallengeRejected) {
  EnclaveAttestationSession session(enclave_);
  EXPECT_THROW((void)session.receive_wrapped_key(Bytes(44)), SgxError);
  DataOwner owner(service_, enclave_.measurement(), training_key_, 1);
  EXPECT_THROW((void)owner.wrap_key_for(Report{}), SgxError);
}

TEST_F(AttestationTest, ReplayedChallengeRejectedAtOwner) {
  // The owner's challenge is single-use: once a key has been wrapped, a
  // replay of the same (valid!) report must be refused outright.
  DataOwner owner(service_, enclave_.measurement(), training_key_, 1);
  EnclaveAttestationSession session(enclave_);
  const Report report = session.respond(owner.make_challenge());
  (void)owner.wrap_key_for(report);
  EXPECT_THROW((void)owner.wrap_key_for(report), SgxError);
}

TEST_F(AttestationTest, ReplayedReportCannotUnwrapFreshSession) {
  // Untrusted host replays an old report against a fresh challenge: the
  // owner wraps under key(old_nonce, new_challenge), but the live session
  // derived key(new_nonce, new_challenge) — the unwrap must fail auth.
  DataOwner owner(service_, enclave_.measurement(), training_key_, 1);
  EnclaveAttestationSession old_session(enclave_);
  const Report old_report = old_session.respond(owner.make_challenge());
  (void)owner.wrap_key_for(old_report);

  const Nonce fresh = owner.make_challenge();
  EnclaveAttestationSession live(enclave_);
  (void)live.respond(fresh);                            // live nonce != old nonce
  const Bytes wrapped = owner.wrap_key_for(old_report);  // adversary's replay
  EXPECT_THROW((void)live.receive_wrapped_key(wrapped), CryptoError);
}

TEST_F(AttestationTest, WrongPlatformSeedCannotDeriveSessionKey) {
  // A report MACed under an unregistered fuse seed: the service must refuse
  // both verification and session-key derivation.
  sim::Clock c;
  EnclaveRuntime impostor(c, SgxCostModel::hardware(), "plinius", 0xDEAD);
  EnclaveAttestationSession session(impostor);
  DataOwner owner(service_, impostor.measurement(), training_key_, 1);
  const Nonce challenge = owner.make_challenge();
  const Report report = session.respond(challenge);
  EXPECT_FALSE(service_.verify(report));
  EXPECT_THROW((void)service_.derive_session_key(report, challenge), SgxError);
}

TEST_F(AttestationTest, TamperedReportNonceBreaksMac) {
  // The MAC covers the enclave nonce: tampering with it must unverify the
  // report (and make derive_session_key throw), not shift the session key.
  DataOwner owner(service_, enclave_.measurement(), training_key_, 1);
  EnclaveAttestationSession session(enclave_);
  const Nonce challenge = owner.make_challenge();
  Report report = session.respond(challenge);
  report.enclave_nonce[7] ^= 0x80;
  EXPECT_FALSE(service_.verify(report));
  EXPECT_THROW((void)service_.derive_session_key(report, challenge), SgxError);
  EXPECT_THROW((void)owner.wrap_key_for(report), SgxError);
}

TEST_F(AttestationTest, SessionKeysDifferAcrossRuns) {
  DataOwner owner(service_, enclave_.measurement(), training_key_, 1);

  EnclaveAttestationSession s1(enclave_);
  const Bytes w1 = owner.wrap_key_for(s1.respond(owner.make_challenge()));
  EnclaveAttestationSession s2(enclave_);
  const Bytes w2 = owner.wrap_key_for(s2.respond(owner.make_challenge()));
  // Fresh nonces both sides: ciphertexts must differ even for the same key.
  EXPECT_NE(w1, w2);
  EXPECT_EQ(s2.receive_wrapped_key(w2), training_key_);
}

}  // namespace
}  // namespace plinius::sgx
