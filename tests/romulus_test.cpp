#include <gtest/gtest.h>

#include <cstring>

#include "common/clock.h"
#include "common/error.h"
#include "common/rng.h"
#include "pm/device.h"
#include "romulus/persist.h"
#include "romulus/romulus.h"
#include "romulus/sps.h"
#include "scone/scone.h"

namespace plinius::romulus {
namespace {

constexpr std::size_t kMain = 1024 * 1024;

class RomulusTest : public ::testing::Test {
 protected:
  RomulusTest()
      : dev_(clock_, Romulus::region_bytes(kMain), pm::PmLatencyModel::optane(), 7),
        rom_(dev_, 0, kMain, PwbPolicy::clflushopt_sfence(), /*format=*/true) {}

  sim::Clock clock_;
  pm::PmDevice dev_;
  Romulus rom_;
};

TEST_F(RomulusTest, RegionBytesAccountsForTwins) {
  EXPECT_GE(Romulus::region_bytes(kMain), 2 * kMain);
}

TEST_F(RomulusTest, FormatLeavesIdleQuiescentState) {
  EXPECT_FALSE(rom_.in_transaction());
  EXPECT_EQ(rom_.allocated_bytes(), 0u);
  for (int i = 0; i < kRootSlots; ++i) EXPECT_EQ(rom_.root(i), 0u);
}

TEST_F(RomulusTest, TxStoreVisibleAfterCommit) {
  const std::uint64_t v = 0xFEEDFACE;
  std::size_t off = 0;
  rom_.run_transaction([&] {
    off = rom_.pmalloc(64);
    rom_.tx_assign(off, v);
  });
  EXPECT_EQ(rom_.read<std::uint64_t>(off), v);
}

TEST_F(RomulusTest, StoreOutsideTransactionThrows) {
  EXPECT_THROW(rom_.tx_assign(256, std::uint64_t{1}), Error);
  EXPECT_THROW((void)rom_.pmalloc(64), Error);
  EXPECT_THROW(rom_.pmfree(256), Error);
  EXPECT_THROW(rom_.set_root(0, 1), Error);
}

TEST_F(RomulusTest, OutOfRangeStoreThrows) {
  rom_.begin_transaction();
  EXPECT_THROW(rom_.tx_assign(kMain, std::uint64_t{1}), PmError);
  rom_.end_transaction();
}

TEST_F(RomulusTest, CommittedTransactionSurvivesCrash) {
  std::size_t off = 0;
  rom_.run_transaction([&] {
    off = rom_.pmalloc(64);
    rom_.tx_assign(off, std::uint64_t{123456789});
    rom_.set_root(0, off);
  });

  dev_.crash();
  Romulus recovered(dev_, 0, kMain, PwbPolicy::clflushopt_sfence());
  const auto root = recovered.root(0);
  EXPECT_EQ(root, off);
  EXPECT_EQ(recovered.read<std::uint64_t>(root), 123456789u);
}

TEST_F(RomulusTest, CrashMidTransactionRollsBack) {
  std::size_t off = 0;
  rom_.run_transaction([&] {
    off = rom_.pmalloc(64);
    rom_.tx_assign(off, std::uint64_t{1});
    rom_.set_root(0, off);
  });

  // Crash in the middle of a mutation: the new value must NOT survive.
  EXPECT_THROW(rom_.run_transaction([&] {
    rom_.tx_assign(off, std::uint64_t{2});
    throw SimulatedCrash("mid-tx");
  }),
               SimulatedCrash);
  dev_.crash();

  Romulus recovered(dev_, 0, kMain, PwbPolicy::clflushopt_sfence());
  EXPECT_EQ(recovered.read<std::uint64_t>(off), 1u);
}

TEST_F(RomulusTest, NestedTransactionsAreFlat) {
  std::size_t off = 0;
  rom_.run_transaction([&] {
    off = rom_.pmalloc(64);
    rom_.run_transaction([&] { rom_.tx_assign(off, std::uint64_t{5}); });
    EXPECT_TRUE(rom_.in_transaction());
  });
  EXPECT_FALSE(rom_.in_transaction());
  EXPECT_EQ(rom_.read<std::uint64_t>(off), 5u);
}

TEST_F(RomulusTest, FourFencesPerTransaction) {
  rom_.run_transaction([&] { (void)rom_.pmalloc(64); });
  dev_.reset_stats();
  rom_.run_transaction([&] {
    const auto off = rom_.pmalloc(64);
    rom_.tx_assign(off, std::uint64_t{1});
    rom_.tx_assign(off + 8, std::uint64_t{2});
    rom_.tx_assign(off + 16, std::uint64_t{3});
  });
  // "Romulus uses at most four persistence fences ... regardless of
  // transaction size."
  EXPECT_EQ(dev_.stats().fences, 4u);
}

TEST_F(RomulusTest, RootSlotsPersist) {
  rom_.run_transaction([&] { rom_.set_root(3, 0xCAFE); });
  EXPECT_EQ(rom_.root(3), 0xCAFEu);
  EXPECT_THROW((void)rom_.root(-1), Error);
  EXPECT_THROW((void)rom_.root(kRootSlots), Error);
}

TEST_F(RomulusTest, ReattachWithDifferentSizeThrows) {
  EXPECT_THROW(Romulus(dev_, 0, kMain / 2, PwbPolicy::clflushopt_sfence()), PmError);
}

TEST_F(RomulusTest, RegionMustFitDevice) {
  EXPECT_THROW(Romulus(dev_, 128, kMain, PwbPolicy::clflushopt_sfence(), true), PmError);
}

// --- allocator ----------------------------------------------------------------

TEST_F(RomulusTest, PmallocReturnsDistinctAlignedBlocks) {
  std::size_t a = 0, b = 0;
  rom_.run_transaction([&] {
    a = rom_.pmalloc(100);
    b = rom_.pmalloc(100);
  });
  EXPECT_NE(a, b);
  EXPECT_GE(b, a + 100);
  EXPECT_GT(rom_.allocated_bytes(), 200u);
}

TEST_F(RomulusTest, PmfreeEnablesReuse) {
  std::size_t a = 0;
  rom_.run_transaction([&] { a = rom_.pmalloc(256); });
  const auto used = rom_.allocated_bytes();
  rom_.run_transaction([&] { rom_.pmfree(a); });
  EXPECT_LT(rom_.allocated_bytes(), used);
  std::size_t b = 0;
  rom_.run_transaction([&] { b = rom_.pmalloc(256); });
  EXPECT_EQ(a, b);  // first-fit reuses the freed block
}

TEST_F(RomulusTest, FreeListSplitsLargeBlocks) {
  std::size_t big = 0;
  rom_.run_transaction([&] { big = rom_.pmalloc(1024); });
  rom_.run_transaction([&] { rom_.pmfree(big); });
  std::size_t small1 = 0, small2 = 0;
  rom_.run_transaction([&] {
    small1 = rom_.pmalloc(64);
    small2 = rom_.pmalloc(64);
  });
  EXPECT_EQ(small1, big);           // head of the split block
  EXPECT_GT(small2, small1);        // remainder
  EXPECT_LT(small2, big + 1024 + 64);  // ...carved from the same block
}

TEST_F(RomulusTest, PmallocExhaustionThrows) {
  rom_.begin_transaction();
  EXPECT_THROW((void)rom_.pmalloc(2 * kMain), PmError);
  rom_.end_transaction();
}

TEST_F(RomulusTest, PmfreeBadOffsetThrows) {
  rom_.begin_transaction();
  EXPECT_THROW(rom_.pmfree(3), Error);
  EXPECT_THROW(rom_.pmfree(kMain + 64), Error);
  rom_.end_transaction();
}

TEST_F(RomulusTest, AllocatorStateSurvivesCrash) {
  std::size_t a = 0;
  rom_.run_transaction([&] {
    a = rom_.pmalloc(128);
    rom_.set_root(0, a);
  });
  dev_.crash();
  Romulus recovered(dev_, 0, kMain, PwbPolicy::clflushopt_sfence());
  std::size_t b = 0;
  recovered.run_transaction([&] { b = recovered.pmalloc(128); });
  EXPECT_NE(a, b) << "recovered allocator must not hand out the live block again";
}

// --- persist<T> ------------------------------------------------------------------

struct Counter {
  persist<std::uint64_t> value;
  persist<std::uint32_t> generation;
};

TEST_F(RomulusTest, PersistInterposesStores) {
  pm_ptr<Counter> ptr;
  rom_.run_transaction([&] {
    ptr = pm_make<Counter>(rom_);
    ptr.get(rom_)->value = 41;
    ptr.get(rom_)->value += 1;
    rom_.set_root(1, ptr.offset());
  });
  EXPECT_EQ(ptr.get(rom_)->value.load(), 42u);

  dev_.crash();
  Romulus recovered(dev_, 0, kMain, PwbPolicy::clflushopt_sfence());
  const pm_ptr<Counter> again(recovered.root(1));
  EXPECT_EQ(again.get(recovered)->value.load(), 42u);
}

TEST_F(RomulusTest, PersistStoreOutsideTransactionThrows) {
  pm_ptr<Counter> ptr;
  rom_.run_transaction([&] { ptr = pm_make<Counter>(rom_); });
  EXPECT_THROW(ptr.get(rom_)->value = 1, PmError);
}

TEST_F(RomulusTest, PmPtrNullSemantics) {
  const pm_ptr<Counter> null;
  EXPECT_TRUE(null.is_null());
  EXPECT_FALSE(null);
  EXPECT_EQ(null.get(rom_), nullptr);
}

// --- crash-consistency property sweep ------------------------------------------
//
// Apply K transactions over an array of slots; inject a crash inside a
// random transaction. Invariant: after recovery, the array reflects exactly
// the transactions committed before the crash (all-or-nothing per txn).

class RomulusCrashSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RomulusCrashSweep, TransactionsAreAtomic) {
  const std::uint64_t seed = GetParam();
  sim::Clock clock;
  pm::PmDevice dev(clock, Romulus::region_bytes(kMain), pm::PmLatencyModel::optane(),
                   seed);
  Rng rng(seed * 31 + 5);

  constexpr std::size_t kSlots = 32;
  std::size_t base = 0;
  {
    Romulus rom(dev, 0, kMain, PwbPolicy::clflushopt_sfence(), true);
    rom.run_transaction([&] {
      base = rom.pmalloc(kSlots * 8);
      rom.set_root(0, base);
      for (std::size_t i = 0; i < kSlots; ++i) {
        rom.tx_assign(base + i * 8, std::uint64_t{0});
      }
    });

    // Each transaction t writes value t+1 into 4 random slots; it crashes
    // inside transaction `crash_at` after a random number of stores.
    const int total_tx = 20;
    const int crash_at = static_cast<int>(rng.below(total_tx));
    std::vector<std::uint64_t> shadow(kSlots, 0);

    for (int t = 0; t < total_tx; ++t) {
      std::vector<std::uint64_t> tx_shadow = shadow;
      const std::size_t crash_after_stores = rng.below(4);
      bool crashed = false;
      try {
        rom.run_transaction([&] {
          for (std::size_t s = 0; s < 4; ++s) {
            if (t == crash_at && s == crash_after_stores) {
              throw SimulatedCrash("sweep");
            }
            const std::size_t slot = rng.below(kSlots);
            rom.tx_assign(base + slot * 8, std::uint64_t(t + 1));
            tx_shadow[slot] = t + 1;
          }
        });
      } catch (const SimulatedCrash&) {
        crashed = true;
      }
      if (crashed) break;
      shadow = tx_shadow;  // committed
    }

    dev.crash();

    Romulus recovered(dev, 0, kMain, PwbPolicy::clflushopt_sfence());
    const auto rbase = recovered.root(0);
    ASSERT_EQ(rbase, base);
    for (std::size_t i = 0; i < kSlots; ++i) {
      EXPECT_EQ(recovered.read<std::uint64_t>(rbase + i * 8), shadow[i])
          << "slot " << i << " seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RomulusCrashSweep, ::testing::Range<std::uint64_t>(1, 21));

// Same sweep under clflush+nop: correctness must not depend on the policy.
class RomulusPolicySweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(RomulusPolicySweep, CommittedDataSurvivesCrashUnderAllPolicies) {
  const int policy_idx = std::get<0>(GetParam());
  const std::uint64_t seed = std::get<1>(GetParam());
  const PwbPolicy policy = policy_idx == 0   ? PwbPolicy::clflush_nop()
                           : policy_idx == 1 ? PwbPolicy::clflushopt_sfence()
                                             : PwbPolicy::clwb_sfence();

  sim::Clock clock;
  pm::PmDevice dev(clock, Romulus::region_bytes(kMain), pm::PmLatencyModel::optane(),
                   seed);
  std::size_t off = 0;
  {
    Romulus rom(dev, 0, kMain, policy, true);
    rom.run_transaction([&] {
      off = rom.pmalloc(64);
      rom.tx_assign(off, seed * 1000 + 1);
      rom.set_root(0, off);
    });
  }
  dev.crash();
  Romulus recovered(dev, 0, kMain, policy);
  EXPECT_EQ(recovered.read<std::uint64_t>(recovered.root(0)), seed * 1000 + 1);
}

INSTANTIATE_TEST_SUITE_P(PoliciesAndSeeds, RomulusPolicySweep,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Range<std::uint64_t>(1, 6)));

TEST_F(RomulusTest, RecoveryIsIdempotent) {
  std::size_t off = 0;
  rom_.run_transaction([&] {
    off = rom_.pmalloc(64);
    rom_.tx_assign(off, std::uint64_t{0xAB});
    rom_.set_root(0, off);
  });
  // Abandon a mutation and crash; recover the region several times over —
  // every recovery must land on the same consistent state.
  rom_.begin_transaction();
  rom_.tx_assign(off, std::uint64_t{0xCD});
  rom_.abandon_transaction();
  dev_.crash();

  Romulus r1(dev_, 0, kMain, PwbPolicy::clflushopt_sfence());
  EXPECT_EQ(r1.read<std::uint64_t>(off), 0xABu);
  r1.recover();  // explicit second recovery: no-op
  EXPECT_EQ(r1.read<std::uint64_t>(off), 0xABu);

  // Re-attach without any crash (clean shutdown path).
  Romulus r2(dev_, 0, kMain, PwbPolicy::clflushopt_sfence());
  EXPECT_EQ(r2.read<std::uint64_t>(off), 0xABu);
  EXPECT_EQ(r2.root(0), off);
}

TEST_F(RomulusTest, CrashDuringBackCopyRedoesCopy) {
  // Crash *after* COPYING became durable but before back finished: recovery
  // must redo main->back, preserving the committed (new) value.
  std::size_t off = 0;
  rom_.run_transaction([&] {
    off = rom_.pmalloc(64);
    rom_.tx_assign(off, std::uint64_t{1});
    rom_.set_root(0, off);
  });

  // Hand-drive the commit protocol up to the COPYING state, then crash.
  rom_.begin_transaction();
  rom_.tx_assign(off, std::uint64_t{2});
  // Emulate "crash between fence 3 and fence 4": force the committed main
  // update and the COPYING state to persistence, then die.
  dev_.flush(0, dev_.size(), pm::FlushKind::kClflush);  // everything durable
  rom_.abandon_transaction();
  // Overwrite header state to COPYING as end_transaction would have.
  const std::uint64_t copying = 2;
  dev_.store(8, &copying, sizeof(copying));  // header.state at offset 8
  dev_.flush(8, sizeof(copying), pm::FlushKind::kClflush);
  dev_.crash();

  Romulus recovered(dev_, 0, kMain, PwbPolicy::clflushopt_sfence());
  // COPYING means main is authoritative: the new value survives.
  EXPECT_EQ(recovered.read<std::uint64_t>(off), 2u);
  // And a fresh transaction works on the recovered region.
  recovered.run_transaction([&] { recovered.tx_assign(off, std::uint64_t{3}); });
  EXPECT_EQ(recovered.read<std::uint64_t>(off), 3u);
}

// --- allocator stress with shadow model ------------------------------------------
//
// Random alloc/free/write workload with periodic crashes; a shadow model
// tracks what was committed. Invariants after every crash+recovery:
//   * every live allocation still holds its committed content;
//   * no two live allocations overlap;
//   * allocator accounting never underflows (checked internally).

class RomulusAllocStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RomulusAllocStress, ShadowModelStaysConsistent) {
  const std::uint64_t seed = GetParam();
  sim::Clock clock;
  constexpr std::size_t kStressMain = 512 * 1024;
  pm::PmDevice dev(clock, Romulus::region_bytes(kStressMain),
                   pm::PmLatencyModel::optane(), seed);
  auto rom = std::make_unique<Romulus>(dev, 0, kStressMain,
                                       PwbPolicy::clflushopt_sfence(), true);
  Rng rng(seed * 7 + 3);

  struct Block {
    std::size_t offset;
    std::size_t size;
    std::uint64_t stamp;  // committed fill pattern
  };
  std::vector<Block> live;        // committed state
  constexpr int kRounds = 40;

  for (int round = 0; round < kRounds; ++round) {
    // One transaction doing a few random mutations.
    std::vector<Block> tx_live = live;
    bool crashed = false;
    try {
      rom->run_transaction([&] {
        const int ops = 1 + static_cast<int>(rng.below(4));
        for (int op = 0; op < ops; ++op) {
          const bool do_free = !tx_live.empty() && rng.below(3) == 0;
          if (do_free) {
            const std::size_t victim = rng.below(tx_live.size());
            rom->pmfree(tx_live[victim].offset);
            tx_live.erase(tx_live.begin() +
                          static_cast<std::ptrdiff_t>(victim));
          } else {
            const std::size_t size = 8 * (1 + rng.below(64));
            std::size_t off = 0;
            try {
              off = rom->pmalloc(size);
            } catch (const PmError&) {
              continue;  // heap exhausted this round: fine
            }
            const std::uint64_t stamp = rng.next();
            std::vector<std::uint64_t> fill(size / 8, stamp);
            rom->tx_store(off, fill.data(), size);
            tx_live.push_back({off, size, stamp});
          }
          if (rng.below(16) == 0) throw SimulatedCrash("alloc stress");
        }
      });
    } catch (const SimulatedCrash&) {
      crashed = true;
    }
    if (!crashed) {
      live = tx_live;  // committed
    } else {
      rom.reset();  // process dies
      dev.crash();
      rom = std::make_unique<Romulus>(dev, 0, kStressMain,
                                      PwbPolicy::clflushopt_sfence());
    }

    // Invariant 1: committed content intact.
    for (const Block& b : live) {
      for (std::size_t i = 0; i < b.size; i += 8) {
        ASSERT_EQ(rom->read<std::uint64_t>(b.offset + i), b.stamp)
            << "round " << round << " offset " << b.offset << "+" << i;
      }
    }
    // Invariant 2: live blocks do not overlap.
    for (std::size_t i = 0; i < live.size(); ++i) {
      for (std::size_t j = i + 1; j < live.size(); ++j) {
        const bool disjoint = live[i].offset + live[i].size <= live[j].offset ||
                              live[j].offset + live[j].size <= live[i].offset;
        ASSERT_TRUE(disjoint) << "blocks " << i << " and " << j << " overlap";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RomulusAllocStress,
                         ::testing::Range<std::uint64_t>(1, 9));

// --- SPS workload -----------------------------------------------------------------

TEST(Sps, ArrayContentIsPermutationAfterRun) {
  sim::Clock clock;
  constexpr std::size_t kSpsMain = 2 * 1024 * 1024;
  pm::PmDevice dev(clock, Romulus::region_bytes(kSpsMain), pm::PmLatencyModel::optane());
  Romulus rom(dev, 0, kSpsMain, PwbPolicy::clflushopt_sfence(), true);

  SpsConfig cfg;
  cfg.array_bytes = 64 * 1024;
  cfg.swaps_per_tx = 8;
  cfg.total_swaps = 1024;
  const auto result = run_sps(rom, cfg);
  EXPECT_EQ(result.transactions, 128u);
  EXPECT_GT(result.swaps_per_second, 0.0);

  // Swaps permute; sum of 0..n-1 must be preserved.
  const std::size_t n = cfg.array_bytes / 8;
  const auto base = rom.root(7);
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) sum += rom.read<std::uint64_t>(base + i * 8);
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST(Sps, ThroughputImprovesWithTransactionSize) {
  // Fixed per-transaction overhead (fences + state flips) amortizes.
  auto sps_at = [](std::size_t swaps_per_tx) {
    sim::Clock clock;
    constexpr std::size_t kSpsMain = 2 * 1024 * 1024;
    pm::PmDevice dev(clock, Romulus::region_bytes(kSpsMain),
                     pm::PmLatencyModel::optane());
    Romulus rom(dev, 0, kSpsMain, PwbPolicy::clflushopt_sfence(), true);
    SpsConfig cfg;
    cfg.array_bytes = 256 * 1024;
    cfg.swaps_per_tx = swaps_per_tx;
    cfg.total_swaps = 4096;
    return run_sps(rom, cfg).swaps_per_second;
  };
  EXPECT_GT(sps_at(64), sps_at(2));
}

TEST(Sps, NativeFasterThanSgxFasterThanSconeAtLargeTxns) {
  auto sps_with = [](const ExecutionProfile& profile, std::size_t swaps) {
    sim::Clock clock;
    constexpr std::size_t kSpsMain = 2 * 1024 * 1024;
    pm::PmDevice dev(clock, Romulus::region_bytes(kSpsMain),
                     pm::PmLatencyModel::emulated_dram());
    Romulus rom(dev, 0, kSpsMain, PwbPolicy::clflushopt_sfence(), true, profile);
    SpsConfig cfg;
    cfg.array_bytes = 256 * 1024;
    cfg.swaps_per_tx = swaps;
    cfg.total_swaps = 8192;
    return run_sps(rom, cfg).swaps_per_second;
  };

  // Small transactions: native > SCONE > SGX-Romulus (paper Fig. 6).
  const double native_small = sps_with(ExecutionProfile::native(), 8);
  const double scone_small = sps_with(scone::scone_container(), 8);
  const double sgx_small = sps_with(ExecutionProfile::sgx_enclave(), 8);
  EXPECT_GT(native_small, scone_small);
  EXPECT_GT(scone_small, sgx_small);

  // Large transactions: SCONE's redo log spills; SGX-Romulus wins.
  const double scone_large = sps_with(scone::scone_container(), 512);
  const double sgx_large = sps_with(ExecutionProfile::sgx_enclave(), 512);
  EXPECT_GT(sgx_large, scone_large);
}

}  // namespace
}  // namespace plinius::romulus
