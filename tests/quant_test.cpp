// INT8 quantization path tests: requantize numerics, int8 GEMM kernels vs
// the scalar oracle (and bitwise determinism across thread counts), the
// quantized network's accuracy against its float parent, the v2 weight
// format (including the v1 legacy path and expected-vs-got header errors),
// the quantized PM mirror, and int8 serving with hot reload.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "crypto/gcm.h"
#include "ml/config.h"
#include "ml/gemm_reference.h"
#include "ml/gemm_s8.h"
#include "ml/quant.h"
#include "ml/serialize.h"
#include "ml/synth_digits.h"
#include "plinius/mirror.h"
#include "plinius/platform.h"
#include "plinius/quant_mirror.h"
#include "plinius/trainer.h"
#include "romulus/romulus.h"
#include "serve/loadgen.h"
#include "serve/server.h"

namespace plinius {
namespace {

using ml::Activation;

// --- requantize / quantize_value numerics ----------------------------------------

TEST(QuantNumericsTest, RequantizeSaturates) {
  EXPECT_EQ(ml::requantize(1 << 30, 1.0f, Activation::kLinear), 127);
  EXPECT_EQ(ml::requantize(-(1 << 30), 1.0f, Activation::kLinear), -127);
  EXPECT_EQ(ml::requantize(128, 1.0f, Activation::kLinear), 127);
  EXPECT_EQ(ml::requantize(-128, 1.0f, Activation::kLinear), -127);
  EXPECT_EQ(ml::requantize(127, 1.0f, Activation::kLinear), 127);
  EXPECT_EQ(ml::requantize(-127, 1.0f, Activation::kLinear), -127);
}

TEST(QuantNumericsTest, RequantizeRoundsHalfAwayFromZero) {
  EXPECT_EQ(ml::requantize(1, 0.5f, Activation::kLinear), 1);    // 0.5 -> 1
  EXPECT_EQ(ml::requantize(-1, 0.5f, Activation::kLinear), -1);  // -0.5 -> -1
  EXPECT_EQ(ml::requantize(3, 0.5f, Activation::kLinear), 2);    // 1.5 -> 2
  EXPECT_EQ(ml::requantize(-3, 0.5f, Activation::kLinear), -2);  // -1.5 -> -2
  EXPECT_EQ(ml::requantize(1, 0.25f, Activation::kLinear), 0);   // 0.25 -> 0
  EXPECT_EQ(ml::requantize(0, 123.0f, Activation::kLinear), 0);
}

TEST(QuantNumericsTest, RequantizeFoldsActivations) {
  // The int32 accumulator's sign decides the branch, so the fold is exact.
  EXPECT_EQ(ml::requantize(-5, 1.0f, Activation::kRelu), 0);
  EXPECT_EQ(ml::requantize(7, 1.0f, Activation::kRelu), 7);
  EXPECT_EQ(ml::requantize(-20, 1.0f, Activation::kLeakyRelu), -2);  // slope 0.1
  EXPECT_EQ(ml::requantize(-4, 1.0f, Activation::kLeakyRelu), 0);    // -0.4 -> 0
  EXPECT_EQ(ml::requantize(20, 1.0f, Activation::kLeakyRelu), 20);
}

TEST(QuantNumericsTest, QuantizeValueSaturatesAndRounds) {
  EXPECT_EQ(ml::quantize_value(10.0f, 0.05f), 127);
  EXPECT_EQ(ml::quantize_value(-10.0f, 0.05f), -127);
  EXPECT_EQ(ml::quantize_value(0.5f, 1.0f), 1);
  EXPECT_EQ(ml::quantize_value(0.49f, 1.0f), 0);
  EXPECT_EQ(ml::quantize_value(-0.5f, 1.0f), -1);
  EXPECT_EQ(ml::quantize_value(0.0f, 1.0f), 0);
}

// --- int8 GEMM kernels ------------------------------------------------------------

void fill_s8(std::vector<std::int8_t>& v, Rng& rng) {
  for (auto& x : v) x = static_cast<std::int8_t>(static_cast<int>(rng.below(255)) - 127);
}

struct GemmShape {
  std::size_t m, n, k;
};

const GemmShape kShapes[] = {{1, 1, 1},    {3, 5, 7},     {6, 16, 256},
                             {7, 17, 31},  {13, 40, 129}, {33, 100, 512}};

TEST(QuantGemmTest, NNMatchesReference) {
  Rng rng(21);
  for (const auto& s : kShapes) {
    std::vector<std::int8_t> a(s.m * s.k), b(s.k * s.n);
    fill_s8(a, rng);
    fill_s8(b, rng);
    std::vector<std::int32_t> c(s.m * s.n, 0), ref(s.m * s.n, 0);
    ml::gemm_s8_nn(s.m, s.n, s.k, a.data(), b.data(), c.data());
    ml::reference::gemm_s8_nn(s.m, s.n, s.k, a.data(), b.data(), ref.data());
    EXPECT_EQ(c, ref) << "nn " << s.m << "x" << s.n << "x" << s.k;
  }
}

TEST(QuantGemmTest, NTMatchesReference) {
  Rng rng(22);
  for (const auto& s : kShapes) {
    std::vector<std::int8_t> a(s.m * s.k), b(s.n * s.k);
    fill_s8(a, rng);
    fill_s8(b, rng);
    std::vector<std::int32_t> c(s.m * s.n, 0), ref(s.m * s.n, 0);
    ml::gemm_s8_nt(s.m, s.n, s.k, a.data(), b.data(), c.data());
    ml::reference::gemm_s8_nt(s.m, s.n, s.k, a.data(), b.data(), ref.data());
    EXPECT_EQ(c, ref) << "nt " << s.m << "x" << s.n << "x" << s.k;
  }
}

TEST(QuantGemmTest, AccumulatesIntoC) {
  // C += A*B: pre-filled accumulators must be preserved, not overwritten.
  Rng rng(23);
  std::vector<std::int8_t> a(6 * 32), b(32 * 16);
  fill_s8(a, rng);
  fill_s8(b, rng);
  std::vector<std::int32_t> c(6 * 16, 1000), ref(6 * 16, 1000);
  ml::gemm_s8_nn(6, 16, 32, a.data(), b.data(), c.data());
  ml::reference::gemm_s8_nn(6, 16, 32, a.data(), b.data(), ref.data());
  EXPECT_EQ(c, ref);
}

TEST(QuantGemmTest, DeterministicAcrossThreads) {
  constexpr std::size_t m = 67, n = 53, k = 129;
  Rng rng(24);
  std::vector<std::int8_t> a(m * k), b(k * n);
  fill_s8(a, rng);
  fill_s8(b, rng);

  const std::size_t saved = par::max_threads();
  par::set_max_threads(1);
  std::vector<std::int32_t> base(m * n, 0);
  ml::gemm_s8_nn(m, n, k, a.data(), b.data(), base.data());
  for (const std::size_t threads : {2u, 4u, 8u}) {
    par::set_max_threads(threads);
    std::vector<std::int32_t> c(m * n, 0);
    ml::gemm_s8_nn(m, n, k, a.data(), b.data(), c.data());
    EXPECT_EQ(c, base) << threads << " threads";
  }
  par::set_max_threads(saved);
}

// --- quantized network numerics ----------------------------------------------------

/// Trained float model + synth-digits split, built once for the suite.
struct TrainedModel {
  Platform platform{MachineProfile::emlsgx_pm(), 64u << 20};
  ml::SynthDigits digits;
  Trainer trainer;

  TrainedModel()
      : digits([] {
          ml::SynthDigitsOptions opt;
          opt.train_count = 2048;
          opt.test_count = 1024;
          return ml::make_synth_digits(opt);
        }()),
        trainer(platform, ml::make_cnn_config(2, 4, 32), TrainerOptions{}) {
    trainer.load_dataset(digits.train);
    (void)trainer.train(150);
  }
};

TrainedModel& trained() {
  static TrainedModel* model = new TrainedModel();
  return *model;
}

ml::QuantizedNetwork quantize_trained() {
  TrainedModel& t = trained();
  return ml::quantize_network(t.trainer.network(), t.digits.train.x.values.data(),
                              512);
}

TEST(QuantNetworkTest, Int8AccuracyWithinOnePercentOfFloat) {
  TrainedModel& t = trained();
  ml::QuantizedNetwork qnet = quantize_trained();
  const double float_acc = t.trainer.network().accuracy(
      t.digits.test.x.values.data(), t.digits.test.y.values.data(),
      t.digits.test.size());
  const double int8_acc = qnet.accuracy(t.digits.test.x.values.data(),
                                        t.digits.test.y.values.data(),
                                        t.digits.test.size());
  EXPECT_GT(float_acc, 0.5) << "float model did not train";
  EXPECT_GE(int8_acc, float_acc - 0.01)
      << "int8 top-1 " << int8_acc << " vs float " << float_acc;
}

TEST(QuantNetworkTest, ForwardBitwiseDeterministicAcrossThreads) {
  TrainedModel& t = trained();
  ml::QuantizedNetwork qnet = quantize_trained();
  constexpr std::size_t kBatch = 96;

  const std::size_t saved = par::max_threads();
  par::set_max_threads(1);
  qnet.forward(t.digits.test.x.values.data(), kBatch);
  const std::vector<float> base = qnet.output();
  for (const std::size_t threads : {2u, 4u, 8u}) {
    par::set_max_threads(threads);
    qnet.forward(t.digits.test.x.values.data(), kBatch);
    const std::vector<float>& out = qnet.output();
    ASSERT_EQ(out.size(), base.size());
    EXPECT_EQ(std::memcmp(out.data(), base.data(), base.size() * sizeof(float)), 0)
        << threads << " threads";
  }
  par::set_max_threads(saved);
}

TEST(QuantNetworkTest, ParameterBytesRoughlyQuartered) {
  TrainedModel& t = trained();
  ml::QuantizedNetwork qnet = quantize_trained();
  const auto float_bytes = static_cast<double>(t.trainer.network().parameter_bytes());
  const auto int8_bytes = static_cast<double>(qnet.parameter_bytes());
  // int32 biases and dropped BN state move the ratio off exactly 4x.
  EXPECT_LT(int8_bytes, 0.35 * float_bytes);
}

// --- v2 weight format --------------------------------------------------------------

ml::Network make_float_net(std::uint64_t seed) {
  Rng rng(seed);
  return ml::build_network(ml::make_cnn_config(2, 4, 16), rng);
}

std::vector<Bytes> param_snapshot(ml::Network& net) {
  std::vector<Bytes> out;
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    for (const auto& buf : net.layer(i).parameters()) {
      Bytes b(buf.values.size() * sizeof(float));
      std::memcpy(b.data(), buf.values.data(), b.size());
      out.push_back(std::move(b));
    }
  }
  return out;
}

TEST(QuantSerializeTest, FloatRoundTripBitIdentical) {
  ml::Network net = make_float_net(31);
  net.set_iterations(77);
  const Bytes blob = ml::serialize_weights(net);

  ml::Network net2 = make_float_net(99);  // same arch, different weights
  ml::deserialize_weights(net2, blob);
  EXPECT_EQ(net2.iterations(), 77u);
  EXPECT_EQ(param_snapshot(net), param_snapshot(net2));
}

TEST(QuantSerializeTest, LegacyV1BlobLoads) {
  ml::Network net = make_float_net(32);
  net.set_iterations(5);
  const Bytes v2 = ml::serialize_weights(net);
  ASSERT_GE(v2.size(), 24u);

  // v1 = v1 magic + the float body (v2 drops in a version/dtype pair after
  // the magic; the body is byte-identical).
  constexpr std::uint64_t kMagicV1 = 0x504C4E57454948ULL;  // "PLNWEIH"
  Bytes v1(v2.size() - 16);
  std::memcpy(v1.data(), &kMagicV1, 8);
  std::memcpy(v1.data() + 8, v2.data() + 24, v2.size() - 24);

  ml::Network net2 = make_float_net(98);
  ml::deserialize_weights(net2, v1);
  EXPECT_EQ(net2.iterations(), 5u);
  EXPECT_EQ(param_snapshot(net), param_snapshot(net2));
}

std::string error_message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const MlError& e) {
    return e.what();
  }
  return "";
}

TEST(QuantSerializeTest, VersionMismatchReportsExpectedVsGot) {
  ml::Network net = make_float_net(33);
  Bytes blob = ml::serialize_weights(net);
  const std::uint64_t bogus = 3;
  std::memcpy(blob.data() + 8, &bogus, 8);  // version field

  ml::Network net2 = make_float_net(97);
  const std::string msg =
      error_message([&] { ml::deserialize_weights(net2, blob); });
  EXPECT_NE(msg.find("expected 2, got 3"), std::string::npos) << msg;
}

TEST(QuantSerializeTest, DtypeMismatchReportsExpectedVsGot) {
  ml::Network net = make_float_net(34);
  const Bytes float_blob = ml::serialize_weights(net);

  ml::QuantizedNetwork qnet = quantize_trained();
  const Bytes int8_blob = ml::serialize_quantized(qnet);

  ml::Network net2 = make_float_net(96);
  std::string msg =
      error_message([&] { ml::deserialize_weights(net2, int8_blob); });
  EXPECT_NE(msg.find("expected float32 (0), got int8 (1)"), std::string::npos)
      << msg;

  msg = error_message([&] { (void)ml::deserialize_quantized(float_blob); });
  EXPECT_NE(msg.find("expected int8 (1), got float32 (0)"), std::string::npos)
      << msg;

  // A legacy v1 blob can never hold int8 weights.
  constexpr std::uint64_t kMagicV1 = 0x504C4E57454948ULL;
  Bytes v1(float_blob.size() - 16);
  std::memcpy(v1.data(), &kMagicV1, 8);
  std::memcpy(v1.data() + 8, float_blob.data() + 24, float_blob.size() - 24);
  msg = error_message([&] { (void)ml::deserialize_quantized(v1); });
  EXPECT_NE(msg.find("legacy v1"), std::string::npos) << msg;
}

void expect_quant_equal(const ml::QuantizedNetwork& a, const ml::QuantizedNetwork& b) {
  ASSERT_EQ(a.num_layers(), b.num_layers());
  EXPECT_EQ(a.input_shape(), b.input_shape());
  EXPECT_EQ(a.input_scale(), b.input_scale());
  EXPECT_EQ(a.iterations(), b.iterations());
  for (std::size_t i = 0; i < a.num_layers(); ++i) {
    const ml::QuantLayer& la = a.layers()[i];
    const ml::QuantLayer& lb = b.layers()[i];
    EXPECT_EQ(la.kind, lb.kind) << "layer " << i;
    EXPECT_EQ(la.in, lb.in) << "layer " << i;
    EXPECT_EQ(la.out, lb.out) << "layer " << i;
    EXPECT_EQ(la.ksize, lb.ksize) << "layer " << i;
    EXPECT_EQ(la.stride, lb.stride) << "layer " << i;
    EXPECT_EQ(la.pad, lb.pad) << "layer " << i;
    EXPECT_EQ(la.activation, lb.activation) << "layer " << i;
    EXPECT_EQ(la.weights, lb.weights) << "layer " << i;
    EXPECT_EQ(la.biases, lb.biases) << "layer " << i;
    // Scales must survive bit-exactly (the requantize multipliers depend on
    // them; any drift would change inference results).
    EXPECT_EQ(la.weight_scale, lb.weight_scale) << "layer " << i;
    EXPECT_EQ(la.in_scale, lb.in_scale) << "layer " << i;
    EXPECT_EQ(la.out_scale, lb.out_scale) << "layer " << i;
  }
}

TEST(QuantSerializeTest, QuantizedRoundTrip) {
  ml::QuantizedNetwork qnet = quantize_trained();
  qnet.set_iterations(42);
  const Bytes blob = ml::serialize_quantized(qnet);
  const ml::QuantizedNetwork back = ml::deserialize_quantized(blob);
  expect_quant_equal(qnet, back);
}

// --- quantized PM mirror -----------------------------------------------------------

crypto::AesGcm test_gcm() {
  Bytes key(16);
  Rng(55).fill(key.data(), key.size());
  return crypto::AesGcm(key);
}

class QuantMirrorTest : public ::testing::Test {
 protected:
  QuantMirrorTest()
      : platform_(MachineProfile::sgx_emlpm(), 48u << 20),
        rom_(platform_.pm(), 0, 16u << 20,
             romulus::PwbPolicy::clflushopt_sfence(), true),
        qmirror_(rom_, platform_.enclave(), test_gcm()) {}

  Platform platform_;
  romulus::Romulus rom_;
  QuantMirror qmirror_;
};

TEST_F(QuantMirrorTest, SaveLoadRoundTrip) {
  ml::QuantizedNetwork qnet = quantize_trained();
  EXPECT_FALSE(qmirror_.exists());
  qmirror_.save(qnet, 5);
  EXPECT_TRUE(qmirror_.exists());
  EXPECT_EQ(qmirror_.version(), 5u);

  ml::QuantizedNetwork restored = qmirror_.load_snapshot();
  expect_quant_equal(qnet, restored);

  // Scales and weights round-tripped through seal/unseal: inference parity.
  TrainedModel& t = trained();
  constexpr std::size_t kCheck = 64;
  std::vector<std::size_t> a(kCheck), b(kCheck);
  qnet.predict(t.digits.test.x.values.data(), kCheck, a.data());
  restored.predict(t.digits.test.x.values.data(), kCheck, b.data());
  EXPECT_EQ(a, b);
}

TEST_F(QuantMirrorTest, SealsRoughlyQuarterOfFloatMirror) {
  ml::QuantizedNetwork qnet = quantize_trained();
  qmirror_.save(qnet, 1);

  MirrorModel fmirror(rom_, platform_.enclave(), test_gcm());
  fmirror.alloc(trained().trainer.network());
  fmirror.mirror_out(trained().trainer.network(), 1);
  std::size_t float_sealed = 0;
  for (const auto& e : fmirror.sealed_extents()) float_sealed += e.sealed_len;

  EXPECT_LT(static_cast<double>(qmirror_.sealed_bytes()),
            0.35 * static_cast<double>(float_sealed));
}

TEST_F(QuantMirrorTest, TamperedSnapshotLeavesTargetUnchanged) {
  ml::QuantizedNetwork qnet = quantize_trained();
  qmirror_.save(qnet, 1);

  // Re-seal (fresh IVs rewrite every sealed byte); the largest extent that
  // changed between the two saves is certainly sealed payload, so the
  // corruption lands on ciphertext, not on mirror metadata.
  std::vector<std::uint8_t> before(rom_.main_base(), rom_.main_base() + (16u << 20));
  qmirror_.save(qnet, 2);
  std::size_t run_best = 0, run_best_len = 0, run_start = 0, run_len = 0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (rom_.main_base()[i] != before[i]) {
      if (run_len == 0) run_start = i;
      if (++run_len > run_best_len) {
        run_best = run_start;
        run_best_len = run_len;
      }
    } else {
      run_len = 0;
    }
  }
  ASSERT_GT(run_best_len, 64u);
  rom_.main_base()[run_best + run_best_len / 2] ^= 0x01;

  ml::QuantizedNetwork target = qnet;  // staged install: must stay intact
  EXPECT_THROW((void)qmirror_.load(target), CryptoError);
  expect_quant_equal(target, qnet);
}

// --- int8 serving ------------------------------------------------------------------

TEST(QuantServeTest, ServesAndHotReloadsFromQuantMirror) {
  Platform platform(MachineProfile::emlsgx_pm(), 64u << 20);
  platform.enclave().set_tcs_count(4);
  ml::SynthDigitsOptions dopt;
  dopt.train_count = 1024;
  dopt.test_count = 256;
  const auto digits = ml::make_synth_digits(dopt);
  Trainer trainer(platform, ml::make_cnn_config(2, 4, 32), TrainerOptions{});
  trainer.load_dataset(digits.train);
  (void)trainer.train(20);
  crypto::AesGcm gcm(trainer.data_key());

  ml::QuantizedNetwork qnet = ml::quantize_network(
      trainer.network(), digits.train.x.values.data(), 256);
  QuantMirror qmirror(trainer.romulus(), platform.enclave(), gcm);
  qmirror.save(qnet, qnet.iterations());

  ml::QuantizedNetwork serving = qnet;
  serve::ServerOptions opt;
  opt.workers = 2;
  opt.batch = {.max_batch = 8, .max_wait_ns = 20'000};
  opt.admission = {.max_queue = 64, .deadline_aware = false};
  serve::InferenceServer server(platform, serving, gcm, opt, &qmirror);

  auto make_reqs = [&](std::uint64_t seed) {
    serve::LoadGenOptions lg;
    lg.rate_qps = 2.0e4;
    lg.count = 60;
    lg.start_ns = platform.clock().now();
    lg.seed = seed;
    crypto::IvSequence iv(static_cast<std::uint32_t>(seed ^ 0xC11E27));
    return serve::poisson_workload(digits.test, gcm, iv, lg);
  };

  const auto reqs = make_reqs(1);
  const auto done = server.run(reqs);
  const auto rep = serve::make_slo_report(reqs, done);
  EXPECT_GT(rep.served, 0u);
  EXPECT_EQ(server.served_version(), qnet.iterations());
  EXPECT_EQ(server.stats().reloads, 0u);

  // Advance the trained model, re-quantize, publish: the server must pick
  // the new snapshot up mid-serving and bump its served version.
  (void)trainer.train(40);
  ml::QuantizedNetwork qnet2 = ml::quantize_network(
      trainer.network(), digits.train.x.values.data(), 256);
  qmirror.save(qnet2, qnet2.iterations());

  const auto reqs2 = make_reqs(2);
  const auto done2 = server.run(reqs2);
  const auto rep2 = serve::make_slo_report(reqs2, done2);
  EXPECT_GT(rep2.served, 0u);
  EXPECT_GE(server.stats().reloads, 1u);
  EXPECT_EQ(server.served_version(), qnet2.iterations());
  EXPECT_EQ(server.stats().reload_failures, 0u);
}

}  // namespace
}  // namespace plinius
