#include <gtest/gtest.h>

#include <set>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/error.h"
#include "common/histogram.h"
#include "common/rng.h"

namespace plinius {
namespace {

TEST(Clock, StartsAtZeroAndAdvances) {
  sim::Clock clock;
  EXPECT_EQ(clock.now(), 0.0);
  clock.advance(125.0);
  EXPECT_DOUBLE_EQ(clock.now(), 125.0);
  clock.advance(0.5);
  EXPECT_DOUBLE_EQ(clock.now(), 125.5);
}

TEST(Clock, RejectsNegativeAdvance) {
  sim::Clock clock;
  EXPECT_THROW(clock.advance(-1.0), std::invalid_argument);
}

TEST(Clock, StopwatchMeasuresSpan) {
  sim::Clock clock;
  clock.advance(10.0);
  sim::Stopwatch sw(clock);
  clock.advance(32.0);
  EXPECT_DOUBLE_EQ(sw.elapsed(), 32.0);
  sw.restart();
  EXPECT_DOUBLE_EQ(sw.elapsed(), 0.0);
}

TEST(Clock, ResetReturnsToZero) {
  sim::Clock clock;
  clock.advance(1e9);
  clock.reset();
  EXPECT_EQ(clock.now(), 0.0);
}

TEST(Clock, BandwidthConversion) {
  // 1 GiB at 1 GiB/s should be ~1 s.
  const double ns = sim::bandwidth_ns(1024.0 * 1024 * 1024, 1.0);
  EXPECT_NEAR(ns, 1e9, 1.0);
}

TEST(Clock, CyclesConversion) {
  EXPECT_DOUBLE_EQ(sim::cycles_to_ns(13100, 3.8), 13100 / 3.8);
}

TEST(Clock, DurationLiterals) {
  using namespace sim;
  EXPECT_DOUBLE_EQ(1.0_us, 1000.0);
  EXPECT_DOUBLE_EQ(2.5_ms, 2.5e6);
  EXPECT_DOUBLE_EQ(1.0_s, 1e9);
  EXPECT_DOUBLE_EQ(42.0_ns, 42.0);
}

TEST(Clock, FormatNs) {
  EXPECT_EQ(sim::format_ns(12.0), "12.0 ns");
  EXPECT_EQ(sim::format_ns(4500.0), "4.50 us");
  EXPECT_EQ(sim::format_ns(2.5e6), "2.50 ms");
  EXPECT_EQ(sim::format_ns(3.25e9), "3.250 s");
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, NormalHasUnitVariance) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, FillIsDeterministic) {
  Rng a(99), b(99);
  std::uint8_t buf1[37], buf2[37];
  a.fill(buf1, sizeof(buf1));
  b.fill(buf2, sizeof(buf2));
  EXPECT_EQ(0, memcmp(buf1, buf2, sizeof(buf1)));
}

TEST(Bytes, AlignHelpers) {
  EXPECT_EQ(align_up(0, 64), 0u);
  EXPECT_EQ(align_up(1, 64), 64u);
  EXPECT_EQ(align_up(64, 64), 64u);
  EXPECT_EQ(align_up(65, 64), 128u);
  EXPECT_EQ(align_down(127, 64), 64u);
  EXPECT_EQ(align_down(128, 64), 128u);
}

TEST(Bytes, SizeLiterals) {
  EXPECT_EQ(4_KiB, 4096u);
  EXPECT_EQ(1_MiB, 1048576u);
  EXPECT_EQ(2_GiB, 2147483648u);
}

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x1f, 0xab, 0xff};
  EXPECT_EQ(to_hex(data), "001fabff");
  EXPECT_EQ(from_hex("001fabff"), data);
  EXPECT_EQ(from_hex("001FABFF"), data);
}

TEST(Bytes, FromHexRejectsBadInput) {
  EXPECT_THROW(from_hex("abc"), Error);
  EXPECT_THROW(from_hex("zz"), Error);
}

TEST(Bytes, SecureEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(secure_equal(a, b));
  EXPECT_FALSE(secure_equal(a, c));
  EXPECT_FALSE(secure_equal(a, d));
}

TEST(Bytes, SecureZero) {
  std::uint8_t buf[16];
  memset(buf, 0xAA, sizeof(buf));
  secure_zero(buf, sizeof(buf));
  for (const auto b : buf) EXPECT_EQ(b, 0);
}

TEST(Error, HierarchyCatchable) {
  EXPECT_THROW(throw CryptoError("x"), Error);
  EXPECT_THROW(throw PmError("x"), Error);
  EXPECT_THROW(throw SgxError("x"), Error);
  EXPECT_THROW(throw MlError("x"), Error);
  EXPECT_THROW(throw StorageError("x"), Error);
}

TEST(Error, SimulatedCrashIsNotAnError) {
  // A simulated power failure must not be swallowed by catch (const Error&).
  bool caught_as_crash = false;
  try {
    try {
      throw SimulatedCrash("mirror_out");
    } catch (const Error&) {
      FAIL() << "SimulatedCrash must not derive from Error";
    }
  } catch (const SimulatedCrash& c) {
    caught_as_crash = true;
    EXPECT_EQ(c.where(), "mirror_out");
  }
  EXPECT_TRUE(caught_as_crash);
}

TEST(Error, ExpectsThrowsWithMessage) {
  EXPECT_NO_THROW(expects(true, "fine"));
  try {
    expects(false, "batch size must be positive");
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("batch size"), std::string::npos);
  }
}

TEST(LatencyHistogram, EmptyReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.mean(), 0);
  EXPECT_EQ(h.percentile(50), 0);
  EXPECT_EQ(h.percentile(99.9), 0);
}

TEST(LatencyHistogram, ExactStatsAndClampedPercentiles) {
  LatencyHistogram h;
  for (int v : {10, 20, 30, 40, 50}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.min(), 10);
  EXPECT_EQ(h.max(), 50);
  EXPECT_DOUBLE_EQ(h.mean(), 30.0);
  // Percentiles are bucket upper edges clamped to the observed range.
  EXPECT_EQ(h.percentile(0), 10);
  EXPECT_EQ(h.percentile(100), 50);
  EXPECT_GE(h.percentile(50), 30 * (1.0 - 1.0 / LatencyHistogram::kSubBuckets));
  EXPECT_LE(h.percentile(50), 30 * (1.0 + 1.0 / LatencyHistogram::kSubBuckets));
}

TEST(LatencyHistogram, RelativeErrorBoundedAcrossMagnitudes) {
  // Any single recorded value must be reported at every percentile within
  // 1/kSubBuckets relative error — the histogram's design guarantee.
  for (double v : {3.0, 17.0, 1000.0, 123456.0, 9.87e8, 3.2e11}) {
    LatencyHistogram h;
    h.record(v);
    for (double p : {1.0, 50.0, 99.0}) {
      EXPECT_NEAR(h.percentile(p), v, v / LatencyHistogram::kSubBuckets)
          << "value " << v << " at p" << p;
    }
  }
}

TEST(LatencyHistogram, PercentilesAreMonotonic) {
  LatencyHistogram h;
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) h.record(rng.uniform(1.0, 1e7));
  double prev = 0;
  for (double p = 0; p <= 100.0; p += 0.5) {
    const double cur = h.percentile(p);
    EXPECT_GE(cur, prev) << "at p" << p;
    prev = cur;
  }
  EXPECT_EQ(h.percentile(100), h.max());
}

TEST(LatencyHistogram, TailPercentileFindsOutlier) {
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.record(100.0);
  h.record(1e6);  // one outlier = the top 1%
  EXPECT_LT(h.percentile(95), 200.0);
  EXPECT_NEAR(h.percentile(99.5), 1e6, 1e6 / LatencyHistogram::kSubBuckets);
}

TEST(LatencyHistogram, MergeMatchesCombinedRecording) {
  LatencyHistogram a, b, combined;
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform(0.0, 1e5);
    ((i % 2 == 0) ? a : b).record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.sum(), combined.sum(), 1e-9 * combined.sum());  // fp order
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    EXPECT_DOUBLE_EQ(a.percentile(p), combined.percentile(p));
  }
}

TEST(LatencyHistogram, MergeMismatchedPopulations) {
  // A large fast population absorbing a tiny slow one (the shape of merging
  // a busy worker's recorder with an idle one): counts add exactly and the
  // small population moves only the tail, not the body.
  LatencyHistogram fast, slow;
  for (int i = 0; i < 10'000; ++i) fast.record(100.0 + (i % 7));
  for (int i = 0; i < 10; ++i) slow.record(1e6);

  const double p50_before = fast.percentile(50);
  fast.merge(slow);
  EXPECT_EQ(fast.count(), 10'010u);
  EXPECT_DOUBLE_EQ(fast.max(), 1e6);
  EXPECT_DOUBLE_EQ(fast.min(), 100.0);
  EXPECT_DOUBLE_EQ(fast.percentile(50), p50_before);  // body unmoved
  EXPECT_LT(fast.percentile(99), 200.0);  // 10/10010 is beyond p99...
  EXPECT_NEAR(fast.percentile(99.95), 1e6,
              1e6 / LatencyHistogram::kSubBuckets);  // ...but inside p99.95

  // Merging into an empty histogram is a copy; merging an empty one in is
  // a no-op (min/max must not be polluted by the empty side's zeros).
  LatencyHistogram empty1, empty2;
  empty1.merge(slow);
  EXPECT_EQ(empty1.count(), 10u);
  EXPECT_DOUBLE_EQ(empty1.min(), 1e6);
  slow.merge(empty2);
  EXPECT_EQ(slow.count(), 10u);
  EXPECT_DOUBLE_EQ(slow.min(), 1e6);
}

TEST(LatencyHistogram, MergePercentileStability) {
  // Percentiles are a function of the merged bucket counts alone: merging
  // the same recordings in any order or chunking yields identical queries.
  Rng rng(23);
  std::vector<double> values;
  values.reserve(3000);
  for (int i = 0; i < 3000; ++i) values.push_back(rng.uniform(1.0, 1e7));

  LatencyHistogram whole;
  for (const double v : values) whole.record(v);

  LatencyHistogram chunks[3];
  for (std::size_t i = 0; i < values.size(); ++i) {
    chunks[i % 3].record(values[i]);
  }
  LatencyHistogram forward, backward;
  for (int c = 0; c < 3; ++c) forward.merge(chunks[c]);
  for (int c = 2; c >= 0; --c) backward.merge(chunks[c]);

  EXPECT_EQ(forward.count(), whole.count());
  EXPECT_EQ(backward.count(), whole.count());
  for (double p : {1.0, 25.0, 50.0, 75.0, 95.0, 99.0, 99.9}) {
    EXPECT_DOUBLE_EQ(forward.percentile(p), whole.percentile(p)) << p;
    EXPECT_DOUBLE_EQ(backward.percentile(p), whole.percentile(p)) << p;
  }
  // Repeated self-queries are stable (no internal mutation on read).
  EXPECT_DOUBLE_EQ(forward.percentile(99), forward.percentile(99));
}

TEST(LatencyHistogram, MergeHistogramsHelperOrderInvariant) {
  // merge_histograms (the cross-replica cohort merge the serving fleet
  // uses) is a pure fold over LatencyHistogram::merge: any permutation of
  // the parts yields bitwise-identical bucket state, hence identical
  // percentile queries.
  Rng rng(41);
  std::vector<LatencyHistogram> parts(4);
  LatencyHistogram whole;
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.uniform(10.0, 5e6);
    parts[static_cast<std::size_t>(i) % parts.size()].record(v);
    whole.record(v);
  }

  const LatencyHistogram forward =
      merge_histograms(std::span<const LatencyHistogram>(parts));
  std::vector<LatencyHistogram> reversed(parts.rbegin(), parts.rend());
  const LatencyHistogram backward =
      merge_histograms(std::span<const LatencyHistogram>(reversed));

  EXPECT_EQ(forward.count(), whole.count());
  EXPECT_EQ(backward.count(), whole.count());
  EXPECT_DOUBLE_EQ(forward.min(), whole.min());
  EXPECT_DOUBLE_EQ(forward.max(), whole.max());
  for (double p : {5.0, 50.0, 95.0, 99.0, 99.9}) {
    EXPECT_DOUBLE_EQ(forward.percentile(p), whole.percentile(p)) << p;
    EXPECT_DOUBLE_EQ(backward.percentile(p), whole.percentile(p)) << p;
  }
}

TEST(LatencyHistogram, MergeHistogramsHelperMismatchedPopulations) {
  // The fleet merges a busy baseline cohort with a nearly idle canary
  // cohort: wildly mismatched counts and empty parts must not perturb the
  // big population's body, and the totals must stay exact.
  std::vector<LatencyHistogram> parts(4);
  for (int i = 0; i < 50'000; ++i) parts[0].record(200.0 + (i % 11));
  for (int i = 0; i < 5; ++i) parts[1].record(2e6);
  // parts[2] stays empty; parts[3] has a single sample.
  parts[3].record(50.0);

  const LatencyHistogram merged =
      merge_histograms(std::span<const LatencyHistogram>(parts));
  EXPECT_EQ(merged.count(), 50'006u);
  EXPECT_DOUBLE_EQ(merged.min(), 50.0);
  EXPECT_DOUBLE_EQ(merged.max(), 2e6);
  EXPECT_NEAR(merged.sum(),
              parts[0].sum() + parts[1].sum() + parts[3].sum(),
              1e-9 * parts[0].sum());
  EXPECT_DOUBLE_EQ(merged.percentile(50), parts[0].percentile(50));
  EXPECT_LT(merged.percentile(99), 300.0);     // 5/50006 beyond p99
  EXPECT_NEAR(merged.percentile(99.999), 2e6,  // ...but inside the far tail
              2e6 / LatencyHistogram::kSubBuckets);

  // Degenerate inputs: no parts, or all-empty parts, give an empty result.
  EXPECT_EQ(merge_histograms({}).count(), 0u);
  const std::vector<LatencyHistogram> empties(3);
  EXPECT_EQ(merge_histograms(std::span<const LatencyHistogram>(empties)).count(), 0u);
}

TEST(LatencyHistogram, ResetAndNegativeClamp) {
  LatencyHistogram h;
  h.record(-5.0);  // clamps to zero rather than corrupting a bucket
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), 0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(99), 0);
  EXPECT_FALSE(h.summary().empty());
}

}  // namespace
}  // namespace plinius
