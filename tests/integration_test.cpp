// End-to-end integration: the complete paper workflow in one test binary —
// attestation-provisioned keys, encrypted data in PM, mirrored training,
// crashes at device level, resume, secure inference — plus fuzz sweeps over
// the externally-facing parsers and the sealed-envelope format.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "crypto/envelope.h"
#include "ml/config.h"
#include "ml/serialize.h"
#include "ml/synth_digits.h"
#include "plinius/inference.h"
#include "plinius/platform.h"
#include "plinius/trainer.h"
#include "sgx/attestation.h"
#include "spot/trace.h"

namespace plinius {
namespace {

TEST(Integration, FullPaperWorkflow) {
  // The data owner's assets.
  ml::SynthDigitsOptions dopt;
  dopt.train_count = 1024;
  dopt.test_count = 256;
  const auto digits = ml::make_synth_digits(dopt);
  const auto config = ml::make_cnn_config(3, 8, 32);

  Platform cloud(MachineProfile::sgx_emlpm(), 64u << 20, /*platform_seed=*/0xC10D);

  // Fig. 5 steps 2-3: attest, provision the data key.
  sgx::AttestationService ias;
  ias.register_platform(0xC10D);
  Bytes data_key(16);
  Rng(1).fill(data_key.data(), data_key.size());
  sgx::DataOwner owner(ias, cloud.enclave().measurement(), data_key, 5);
  sgx::EnclaveAttestationSession session(cloud.enclave());
  const auto report = session.respond(owner.make_challenge());
  ASSERT_TRUE(ias.verify(report));
  const Bytes provisioned = session.receive_wrapped_key(owner.wrap_key_for(report));
  ASSERT_EQ(provisioned, data_key);

  // Training with the Trainer (which seals its own key to disk); three
  // crash/resume cycles at device level.
  std::uint64_t reached = 0;
  for (int life = 0; life < 3; ++life) {
    Trainer trainer(cloud, config, TrainerOptions{});
    trainer.load_dataset(digits.train);
    const std::uint64_t resume = trainer.resume_or_init();
    EXPECT_EQ(resume, reached);
    const std::uint64_t goal = 20 + 20 * static_cast<std::uint64_t>(life);
    try {
      trainer.train(60, [&](std::uint64_t iter, float loss) {
        ASSERT_TRUE(std::isfinite(loss));
        if (iter == goal && life < 2) throw SimulatedCrash("integration kill");
      });
      reached = 60;
    } catch (const SimulatedCrash&) {
      reached = goal;
      cloud.pm().crash();
    }
  }
  EXPECT_EQ(reached, 60u);

  // Secure inference on the restored model.
  Trainer final_trainer(cloud, config, TrainerOptions{});
  final_trainer.load_dataset(digits.train);
  EXPECT_EQ(final_trainer.resume_or_init(), 60u);
  const crypto::AesGcm gcm{final_trainer.data_key()};
  InferenceService service(cloud, final_trainer.network(), gcm);
  const double acc = service.evaluate(digits.test);
  EXPECT_GT(acc, 0.5);

  // The persistent metrics log tells the whole story.
  const auto metrics = final_trainer.metrics().all();
  ASSERT_EQ(metrics.size(), 60u);
  EXPECT_EQ(metrics.back().iteration, 60u);

  // Simulated time moved forward through it all.
  EXPECT_GT(cloud.clock().now(), 0.0);
}

// --- fuzz sweeps -------------------------------------------------------------------

TEST(Fuzz, ConfigParserNeverCrashes) {
  const std::string base =
      "[net]\nbatch=8\nheight=28\nwidth=28\nchannels=1\n"
      "[convolutional]\nfilters=4\nstride=2\n\n[connected]\noutput=10\n\n[softmax]\n";
  Rng rng(101);
  int parsed = 0, rejected = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = base;
    const int edits = 1 + static_cast<int>(rng.below(5));
    for (int e = 0; e < edits; ++e) {
      const std::size_t pos = rng.below(mutated.size());
      switch (rng.below(3)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.below(256));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1, static_cast<char>('!' + rng.below(90)));
      }
    }
    try {
      const auto cfg = ml::ModelConfig::parse(mutated);
      Rng init(1);
      ml::Network net = ml::build_network(cfg, init);  // may also throw
      (void)net;
      ++parsed;
    } catch (const Error&) {
      ++rejected;  // clean rejection is the contract
    }
  }
  EXPECT_EQ(parsed + rejected, 400);
  EXPECT_GT(rejected, 0);  // mutations do get caught
}

TEST(Fuzz, SpotTraceParserNeverCrashes) {
  const std::string base = spot::SpotTrace::synthetic(16, 1).to_csv();
  Rng rng(202);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = base;
    for (int e = 0; e < 3; ++e) {
      const std::size_t pos = rng.below(mutated.size());
      mutated[pos] = static_cast<char>(rng.below(256));
    }
    try {
      (void)spot::SpotTrace::parse_csv(mutated);
    } catch (const Error&) {
    }
  }
  SUCCEED();
}

TEST(Fuzz, SealedEnvelopeRejectsAllMutations) {
  Rng rng(303);
  Bytes key(16);
  rng.fill(key.data(), key.size());
  const crypto::AesGcm gcm(key);
  crypto::IvSequence iv_seq(304);

  Bytes plain(257);
  rng.fill(plain.data(), plain.size());
  const Bytes sealed = crypto::seal(gcm, iv_seq, plain);

  int rejected = 0;
  for (int trial = 0; trial < 200; ++trial) {
    Bytes mutated = sealed;
    const std::size_t pos = rng.below(mutated.size());
    const std::uint8_t bit = static_cast<std::uint8_t>(1u << rng.below(8));
    mutated[pos] ^= bit;
    try {
      const Bytes out = crypto::open(gcm, mutated);
      // An IV flip changes the keystream => MAC must fail; a CT flip =>
      // MAC must fail; a MAC flip => compare must fail. Nothing may open.
      FAIL() << "mutation at byte " << pos << " opened successfully";
    } catch (const CryptoError&) {
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, 200);

  // Truncations and extensions are rejected too.
  for (const std::size_t cut : {1u, 12u, 16u, 28u, 100u}) {
    Bytes truncated(sealed.begin(), sealed.end() - static_cast<long>(cut));
    EXPECT_THROW((void)crypto::open(gcm, truncated), CryptoError);
  }
  Bytes extended = sealed;
  extended.push_back(0);
  EXPECT_THROW((void)crypto::open(gcm, extended), CryptoError);
}

TEST(Fuzz, WeightsBlobRejectsMutationsOrStaysShapeSafe) {
  Rng rng(405);
  ml::Network net = [&] {
    Rng init(9);
    return ml::build_network(ml::make_cnn_config(2, 4, 8), init);
  }();
  const Bytes blob = ml::serialize_weights(net);

  int clean = 0, rejected = 0;
  for (int trial = 0; trial < 200; ++trial) {
    Bytes mutated = blob;
    mutated[rng.below(mutated.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    try {
      ml::deserialize_weights(net, mutated);
      ++clean;  // payload-only mutation: loads, shapes intact
    } catch (const MlError&) {
      ++rejected;  // structural mutation: cleanly rejected
    }
  }
  EXPECT_EQ(clean + rejected, 200);
  // Restore pristine weights for hygiene.
  ml::deserialize_weights(net, blob);
}

TEST(Integration, BundledSpotTraceMatchesGenerator) {
  // data/spot_trace.csv is the seed-57 synthetic trace; regeneration must
  // reproduce it bit-for-bit (protects the Fig. 10 scenario).
  spot::SpotTrace bundled;
  bool found = false;
  for (const char* path : {"data/spot_trace.csv", "../data/spot_trace.csv",
                           "../../data/spot_trace.csv"}) {
    try {
      bundled = spot::SpotTrace::from_file(path);
      found = true;
      break;
    } catch (const Error&) {
    }
  }
  if (!found) GTEST_SKIP() << "bundled trace not found from this working directory";
  const auto regenerated = spot::SpotTrace::synthetic(256, 57);
  ASSERT_EQ(bundled.size(), regenerated.size());
  int above_bid = 0;
  for (std::size_t i = 0; i < bundled.size(); ++i) {
    EXPECT_NEAR(bundled.entries[i].price, regenerated.entries[i].price, 1e-6);
    above_bid += bundled.entries[i].price > 0.0955;
  }
  EXPECT_GT(above_bid, 0);
}

}  // namespace
}  // namespace plinius
