#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <iterator>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/fabric.h"
#include "common/error.h"
#include "crypto/envelope.h"
#include "ml/config.h"
#include "ml/quant.h"
#include "ml/serialize.h"
#include "ml/synth_digits.h"
#include "obs/registry.h"
#include "plinius/metrics_log.h"
#include "plinius/mirror.h"
#include "plinius/platform.h"
#include "plinius/pm_data.h"
#include "plinius/quant_mirror.h"
#include "plinius/tensor_mirror.h"
#include "pm/root_slots.h"
#include "romulus/romulus.h"
#include "serve/fleet/autoscaler.h"
#include "serve/fleet/fleet_server.h"
#include "serve/fleet/registry.h"
#include "serve/fleet/router.h"
#include "serve/loadgen.h"

namespace plinius::serve::fleet {
namespace {

// --- root-slot registry ----------------------------------------------------------

// Every persistent structure's kRootSlot must alias the central registry in
// pm/root_slots.h — a silent disagreement would alias two structures onto
// one slot and corrupt both. The static_asserts make a drifted owner a
// compile error; the runtime checks keep the invariant visible in ctest.
TEST(RootSlots, OwnersAgreeWithCentralRegistry) {
  static_assert(MirrorModel::kRootSlot == pm::kMirrorRootSlot);
  static_assert(PmDataStore::kRootSlot == pm::kPmDataRootSlot);
  static_assert(TensorMirror::kRootSlot == pm::kTensorMirrorRootSlot);
  static_assert(MetricsLog::kRootSlot == pm::kMetricsLogRootSlot);
  static_assert(RecoveryLog::kRootSlot == pm::kRecoveryLogRootSlot);
  static_assert(ServeLog::kRootSlot == pm::kServeLogRootSlot);
  static_assert(QuantMirror::kRootSlot == pm::kQuantMirrorRootSlot);
  static_assert(ModelRegistry::kRootSlot == pm::kModelRegistryRootSlot);
  static_assert(romulus::kRootSlots == pm::kRootSlotCapacity);

  EXPECT_TRUE(pm::detail::root_slots_unique_and_in_range());
  const std::set<int> slots(std::begin(pm::detail::kAssignedRootSlots),
                            std::end(pm::detail::kAssignedRootSlots));
  EXPECT_EQ(slots.size(), std::size(pm::detail::kAssignedRootSlots));
  for (const int slot : slots) {
    EXPECT_GE(slot, 0);
    EXPECT_LT(slot, pm::kRootSlotCapacity);
  }
}

// --- router ----------------------------------------------------------------------

std::vector<Request> burst(std::size_t count, sim::Nanos arrival = 0) {
  std::vector<Request> reqs(count);
  for (std::size_t i = 0; i < count; ++i) {
    reqs[i].id = i;
    reqs[i].tenant = i;
    reqs[i].arrival_ns = arrival;
  }
  return reqs;
}

RouterOptions batch_only_options() {
  RouterOptions opt;
  opt.max_outstanding = 0;  // no shedding
  opt.tenant_class = {SloClass::kBatch};
  return opt;
}

TEST(Router, LeastLoadedSpreadsSimultaneousBurst) {
  RouterOptions opt = batch_only_options();
  opt.policy = RoutePolicy::kLeastLoaded;
  opt.service_estimate_ns = 1000;
  Router router(opt, 4);

  std::vector<Request> reqs = burst(100);
  const std::vector<RouteDecision> decisions = router.route(reqs);

  std::map<std::size_t, std::size_t> per_replica;
  for (const RouteDecision& d : decisions) {
    EXPECT_FALSE(d.shed);
    ++per_replica[d.replica];
  }
  ASSERT_EQ(per_replica.size(), 4u);
  for (const auto& [replica, count] : per_replica) EXPECT_EQ(count, 25u);
  EXPECT_EQ(router.stats().routed, 100u);
  EXPECT_EQ(router.stats().shed, 0u);
}

TEST(Router, BacklogEstimateDrainsOverTime) {
  RouterOptions opt = batch_only_options();
  opt.service_estimate_ns = 1e6;
  Router router(opt, 1);

  std::vector<Request> reqs = burst(2);
  router.route(reqs);
  EXPECT_DOUBLE_EQ(router.estimated_backlog(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(router.estimated_backlog(0, 1e6), 1.0);
  EXPECT_DOUBLE_EQ(router.estimated_backlog(0, 5e6), 0.0);
}

TEST(Router, ConsistentHashGivesTenantAffinity) {
  RouterOptions opt = batch_only_options();
  opt.policy = RoutePolicy::kConsistentHash;
  Router router(opt, 4);

  std::map<std::uint64_t, std::size_t> tenant_home;
  for (int round = 0; round < 8; ++round) {
    std::vector<Request> reqs(32);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      reqs[i].tenant = i;
      reqs[i].arrival_ns = round * 1e6;
    }
    const std::vector<RouteDecision> decisions = router.route(reqs);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const auto [it, fresh] = tenant_home.emplace(i, decisions[i].replica);
      if (!fresh) {
        EXPECT_EQ(it->second, decisions[i].replica) << "tenant " << i;
      }
    }
  }
  // A 4-replica ring with 64 vnodes each should actually spread tenants.
  std::set<std::size_t> homes;
  for (const auto& [tenant, home] : tenant_home) homes.insert(home);
  EXPECT_GE(homes.size(), 3u);
}

TEST(Router, ConsistentHashIsStableUnderGrowth) {
  constexpr std::size_t kTenants = 256;
  RouterOptions opt = batch_only_options();
  opt.policy = RoutePolicy::kConsistentHash;

  const auto homes_with = [&](std::size_t replicas) {
    Router router(opt, replicas);
    std::vector<Request> reqs(kTenants);
    for (std::size_t i = 0; i < kTenants; ++i) reqs[i].tenant = i;
    const std::vector<RouteDecision> decisions = router.route(reqs);
    std::vector<std::size_t> homes(kTenants);
    for (std::size_t i = 0; i < kTenants; ++i) homes[i] = decisions[i].replica;
    return homes;
  };

  const std::vector<std::size_t> before = homes_with(4);
  const std::vector<std::size_t> after = homes_with(5);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < kTenants; ++i) {
    if (before[i] != after[i]) {
      ++moved;
      // Growth only adds arcs: a tenant that moves must move to the joiner.
      EXPECT_EQ(after[i], 4u) << "tenant " << i;
    }
  }
  // Expected churn is ~1/5 of tenants; anywhere below half is "stable"
  // compared to the 4/5 a modulo rehash would move.
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, kTenants / 2);
}

TEST(Router, SloClassStampsDeadlinesAtAdmission) {
  RouterOptions opt;  // default classes + the 3-class cycling tenant map
  opt.max_outstanding = 0;
  Router router(opt, 2);

  std::vector<Request> reqs(3);
  for (std::size_t i = 0; i < 3; ++i) {
    reqs[i].tenant = i;
    reqs[i].arrival_ns = 1000;
  }
  EXPECT_EQ(router.class_of(0), SloClass::kInteractive);
  EXPECT_EQ(router.class_of(1), SloClass::kStandard);
  EXPECT_EQ(router.class_of(2), SloClass::kBatch);
  EXPECT_EQ(router.class_of(3), SloClass::kInteractive);

  router.route(reqs);
  EXPECT_DOUBLE_EQ(reqs[0].deadline_ns, 1000 + 2e6);
  EXPECT_DOUBLE_EQ(reqs[1].deadline_ns, 1000 + 10e6);
  EXPECT_EQ(reqs[2].deadline_ns, kNoDeadline);  // batch: untouched
}

TEST(Router, ShedFractionTightensPerClassAdmission) {
  const auto admitted_with = [](SloClass cls) {
    RouterOptions opt;
    opt.max_outstanding = 4;
    opt.service_estimate_ns = 1e6;
    opt.tenant_class = {cls};
    Router router(opt, 1);
    std::vector<Request> reqs = burst(10);
    const std::vector<RouteDecision> decisions = router.route(reqs);
    std::size_t admitted = 0;
    for (const RouteDecision& d : decisions) admitted += d.shed ? 0 : 1;
    const std::size_t idx = static_cast<std::size_t>(cls);
    EXPECT_EQ(router.stats().routed_by_class[idx], admitted);
    EXPECT_EQ(router.stats().shed_by_class[idx], 10u - admitted);
    return admitted;
  };

  // Bound is max_outstanding * shed_fraction: interactive (0.25) sheds at a
  // backlog of 1, standard (0.75) at 3, batch (1.0) rides the full queue.
  EXPECT_EQ(admitted_with(SloClass::kInteractive), 1u);
  EXPECT_EQ(admitted_with(SloClass::kStandard), 3u);
  EXPECT_EQ(admitted_with(SloClass::kBatch), 4u);
}

TEST(Router, EnumNamesRoundTrip) {
  EXPECT_STREQ(to_string(RoutePolicy::kLeastLoaded), "least-loaded");
  EXPECT_STREQ(to_string(RoutePolicy::kConsistentHash), "consistent-hash");
  EXPECT_STREQ(to_string(SloClass::kInteractive), "interactive");
  EXPECT_STREQ(to_string(VersionState::kCanary), "canary");
  EXPECT_STREQ(to_string(VersionState::kRejected), "rejected");
}

// --- cluster fabric --------------------------------------------------------------

TEST(Fabric, TransferChargesBothEndsAndRetriesDeterministically) {
  Platform a(MachineProfile::emlsgx_pm(), 16u << 20, 0x100);
  Platform b(MachineProfile::emlsgx_pm(), 16u << 20, 0x200);
  cluster::LinkOptions link;
  link.retries = 3;

  Rng ok_rng(7);
  const cluster::TransferOutcome ok = cluster::transfer_sealed(
      {&a.enclave(), &a.clock()}, {&b.enclave(), &b.clock()}, 1 << 20, link,
      ok_rng, cluster::member_backoff_seed(link.net_seed, 0));
  EXPECT_TRUE(ok.delivered);
  EXPECT_EQ(ok.drops, 0u);
  EXPECT_GT(a.clock().now(), 0.0);  // wire time charged to the sender too

  link.loss_rate = 1.0;  // dead link: every attempt drops
  Rng dead_rng(7);
  const sim::Nanos b_before = b.clock().now();
  const cluster::TransferOutcome dead = cluster::transfer_sealed(
      {&a.enclave(), &a.clock()}, {&b.enclave(), &b.clock()}, 1 << 20, link,
      dead_rng, cluster::member_backoff_seed(link.net_seed, 1));
  EXPECT_FALSE(dead.delivered);
  EXPECT_EQ(dead.drops, link.retries + 1);
  EXPECT_GT(b.clock().now(), b_before);  // receiver waited out the backoffs
}

TEST(Fabric, MemberBackoffSeedsAreDistinct) {
  std::set<std::uint64_t> seeds;
  for (std::size_t m = 0; m < 16; ++m) {
    seeds.insert(cluster::member_backoff_seed(0x9E77, m));
  }
  EXPECT_EQ(seeds.size(), 16u);
}

// --- model registry --------------------------------------------------------------

crypto::AesGcm test_gcm() {
  Bytes key(16);
  Rng(99).fill(key.data(), key.size());
  return crypto::AesGcm(key);
}

ml::ModelConfig tiny_config() { return ml::make_cnn_config(1, 4, 32); }

class RegistryTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kPmBytes = 48u << 20;

  RegistryTest()
      : platform_(MachineProfile::emlsgx_pm(), kPmBytes, 0x300),
        rom_(platform_.pm(), 0, kPmBytes / 3,
             romulus::PwbPolicy::clflushopt_sfence(), /*format=*/true),
        registry_(rom_, platform_.enclave(), test_gcm()) {}

  ml::Network make_net(std::uint64_t seed) {
    Rng rng(seed);
    return ml::build_network(tiny_config(), rng);
  }

  Platform platform_;
  romulus::Romulus rom_;
  ModelRegistry registry_;
};

TEST_F(RegistryTest, CreatePublishLoadRoundTripsFloat) {
  EXPECT_FALSE(registry_.exists());
  registry_.create(8);
  EXPECT_TRUE(registry_.exists());
  EXPECT_EQ(registry_.capacity(), 8u);
  EXPECT_EQ(registry_.size(), 0u);

  ml::Network net = make_net(1);
  const std::uint64_t v = registry_.publish(net);
  EXPECT_EQ(v, 1u);
  EXPECT_EQ(registry_.size(), 1u);

  const VersionRecord rec = registry_.record(v);
  EXPECT_EQ(rec.version, v);
  EXPECT_EQ(rec.dtype, ml::kDtypeFloat32);
  EXPECT_EQ(rec.state, VersionState::kStaged);
  EXPECT_EQ(rec.sealed_len, rec.plain_len + crypto::kSealOverhead);
  EXPECT_EQ(registry_.sealed_bytes(), rec.sealed_len);

  // Loading into a same-architecture network reproduces the weights bit for
  // bit (the v2 format round-trips exactly).
  ml::Network loaded = make_net(2);
  registry_.load(v, loaded);
  EXPECT_EQ(ml::serialize_weights(loaded), ml::serialize_weights(net));
}

TEST_F(RegistryTest, PublishQuantizedRoundTripsInt8) {
  registry_.create(4);
  ml::Network net = make_net(3);
  const ml::SynthDigits data =
      ml::make_synth_digits({.train_count = 64, .test_count = 16, .seed = 5});
  const ml::QuantizedNetwork qnet =
      ml::quantize_network(net, data.train.x.row(0), 64);

  const std::uint64_t v = registry_.publish(qnet);
  const VersionRecord rec = registry_.record(v);
  EXPECT_EQ(rec.dtype, ml::kDtypeInt8);

  const ml::QuantizedNetwork loaded = registry_.load_quantized(v);
  EXPECT_EQ(ml::serialize_quantized(loaded), ml::serialize_quantized(qnet));
  // Mixed float/int8 records coexist; versions stay monotonic.
  ml::Network net2 = make_net(4);
  EXPECT_EQ(registry_.publish(net2), v + 1);
  EXPECT_EQ(registry_.records().size(), 2u);
}

TEST_F(RegistryTest, StateMachinePersistsAndServingVersionIsUnique) {
  registry_.create(4);
  ml::Network n1 = make_net(1), n2 = make_net(2);
  const std::uint64_t v1 = registry_.publish(n1);
  const std::uint64_t v2 = registry_.publish(n2);
  EXPECT_EQ(registry_.serving_version(), 0u);

  registry_.set_state(v1, VersionState::kServing);
  EXPECT_EQ(registry_.serving_version(), v1);

  registry_.set_state(v1, VersionState::kRetired);
  registry_.set_state(v2, VersionState::kServing);
  EXPECT_EQ(registry_.serving_version(), v2);
  EXPECT_EQ(registry_.record(v1).state, VersionState::kRetired);

  const RegistryStats stats = registry_.stats();
  EXPECT_EQ(stats.versions, 2u);
  EXPECT_EQ(stats.serving_version, v2);
  EXPECT_EQ(stats.publishes, 2u);
}

TEST_F(RegistryTest, TamperedRecordFailsClosed) {
  registry_.create(4);
  ml::Network net = make_net(1);
  ml::Network other = make_net(2);
  const std::uint64_t v1 = registry_.publish(net);
  const std::uint64_t v2 = registry_.publish(other);

  const auto [off, len] = registry_.sealed_extent(v1);
  ASSERT_GT(len, 32u);
  rom_.main_base()[off + 16] ^= 0x01;  // media tamper inside the ciphertext

  ml::Network victim = make_net(3);
  const Bytes before = ml::serialize_weights(victim);
  EXPECT_THROW(registry_.load(v1, victim), CryptoError);
  // Staged load: the serving model is untouched by the failed authentication.
  EXPECT_EQ(ml::serialize_weights(victim), before);
  EXPECT_EQ(registry_.stats().load_failures, 1u);

  // The sibling record still authenticates.
  registry_.load(v2, victim);
  EXPECT_EQ(ml::serialize_weights(victim), ml::serialize_weights(other));
}

TEST_F(RegistryTest, CapacityAndUnknownVersionsThrow) {
  registry_.create(1);
  ml::Network net = make_net(1);
  registry_.publish(net);
  ml::Network extra = make_net(2);
  EXPECT_THROW(registry_.publish(extra), PmError);
  EXPECT_THROW((void)registry_.record(42), PmError);
  EXPECT_THROW(registry_.load_blob(42), PmError);
  EXPECT_THROW(registry_.create(4), PmError);  // already exists
}

TEST(RegistryRestart, ReattachFindsSealedRecords) {
  constexpr std::size_t kPmBytes = 48u << 20;
  Platform platform(MachineProfile::emlsgx_pm(), kPmBytes, 0x400);
  Rng rng(1);
  ml::Network net = ml::build_network(tiny_config(), rng);
  const Bytes want = ml::serialize_weights(net);

  std::uint64_t v = 0;
  {
    romulus::Romulus rom(platform.pm(), 0, kPmBytes / 3,
                         romulus::PwbPolicy::clflushopt_sfence(), /*format=*/true);
    ModelRegistry registry(rom, platform.enclave(), test_gcm());
    registry.create(4);
    v = registry.publish(net);
    registry.set_state(v, VersionState::kServing);
  }

  // "Restart": re-attach to the same PM without formatting.
  romulus::Romulus rom(platform.pm(), 0, kPmBytes / 3,
                       romulus::PwbPolicy::clflushopt_sfence(), /*format=*/false);
  ModelRegistry registry(rom, platform.enclave(), test_gcm());
  ASSERT_TRUE(registry.exists());
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.serving_version(), v);
  EXPECT_EQ(registry.record(v).state, VersionState::kServing);

  Rng rng2(2);
  ml::Network loaded = ml::build_network(tiny_config(), rng2);
  registry.load(v, loaded);
  EXPECT_EQ(ml::serialize_weights(loaded), want);
}

// --- autoscaler ------------------------------------------------------------------

TEST(Autoscaler, ScalesUpOnPressureThenCoolsDown) {
  AutoscalerOptions opt;
  opt.max_replicas = 8;
  opt.cooldown_windows = 2;
  opt.step = 2;
  Autoscaler scaler(opt);

  obs::Registry reg;
  reg.set_gauge("router.p99_us", opt.p99_high_us * 2);
  reg.set_gauge("router.utilization", 0.9);
  EXPECT_EQ(scaler.decide(reg, 2), 2);
  EXPECT_EQ(scaler.stats().scale_ups, 1u);
  // Cooldown: the same pressure is ignored for two windows.
  EXPECT_EQ(scaler.decide(reg, 4), 0);
  EXPECT_EQ(scaler.decide(reg, 4), 0);
  EXPECT_EQ(scaler.stats().holds, 2u);
  EXPECT_EQ(scaler.decide(reg, 4), 2);
  // Clamped at max_replicas; pressure at the ceiling is a hold, not a climb.
  Autoscaler capped(opt);
  EXPECT_EQ(capped.decide(reg, 8), 0);
}

TEST(Autoscaler, ScalesDownOnLowUtilizationAboveFloor) {
  AutoscalerOptions opt;
  opt.min_replicas = 1;
  opt.cooldown_windows = 0;
  Autoscaler scaler(opt);

  obs::Registry reg;
  reg.set_gauge("router.p99_us", 10.0);
  reg.set_gauge("router.utilization", 0.05);
  EXPECT_EQ(scaler.decide(reg, 3), -1);
  EXPECT_EQ(scaler.decide(reg, 2), -1);
  EXPECT_EQ(scaler.decide(reg, 1), 0);  // never below min_replicas
  EXPECT_EQ(scaler.stats().scale_downs, 2u);

  // Queue pressure alone also triggers growth.
  reg.set_gauge("router.queue_depth", opt.queue_high + 1);
  EXPECT_EQ(scaler.decide(reg, 1), 1);
}

// --- serving fleet ---------------------------------------------------------------

const ml::SynthDigits& digits() {
  static const ml::SynthDigits data =
      ml::make_synth_digits({.train_count = 256, .test_count = 128, .seed = 77});
  return data;
}

FleetOptions small_fleet_options(std::size_t replicas) {
  FleetOptions opt;
  opt.initial_replicas = replicas;
  opt.pm_bytes_per_replica = 24u << 20;
  opt.control_pm_bytes = 48u << 20;
  opt.server.workers = 1;
  opt.server.batch = {.max_batch = 8, .max_wait_ns = 50'000};
  opt.server.admission.max_queue = 512;
  opt.server.admission.deadline_aware = false;
  opt.router.max_outstanding = 0;        // router sheds off in baseline tests
  opt.router.tenant_class = {SloClass::kBatch};  // no deadline stamping
  opt.canary.min_samples = 10;
  opt.canary.promote_after = 2;
  opt.autoscale = false;
  return opt;
}

std::vector<Request> fleet_workload(ServingFleet& fleet, double rate_qps,
                                    std::size_t count, std::uint64_t seed) {
  LoadGenOptions lg;
  lg.rate_qps = rate_qps;
  lg.count = count;
  lg.start_ns = fleet.elapsed_ns();
  lg.seed = seed;
  lg.tenants = 6;
  const crypto::AesGcm gcm(fleet.data_key());
  crypto::IvSequence ivs(static_cast<std::uint32_t>(seed ^ 0xC11E27));
  return poisson_workload(digits().test, gcm, ivs, lg);
}

std::uint64_t publish_float(ServingFleet& fleet, std::uint64_t seed,
                            const ml::ModelConfig& config = tiny_config()) {
  Rng rng(seed);
  ml::Network net = ml::build_network(config, rng);
  return fleet.publish(net);
}

std::uint64_t publish_int8(ServingFleet& fleet, std::uint64_t seed,
                           const ml::ModelConfig& config = tiny_config()) {
  Rng rng(seed);
  ml::Network net = ml::build_network(config, rng);
  const ml::QuantizedNetwork qnet =
      ml::quantize_network(net, digits().train.x.row(0), 64);
  return fleet.publish(qnet);
}

/// Every workload request must come back exactly once, whatever its fate.
void expect_one_completion_each(const std::vector<Request>& workload,
                                const FleetWindowReport& window) {
  ASSERT_EQ(window.completions.size(), workload.size());
  std::set<std::uint64_t> ids;
  for (const Completion& c : window.completions) {
    EXPECT_TRUE(ids.insert(c.id).second) << "duplicate completion id " << c.id;
    EXPECT_FALSE(c.sealed_reply.empty());
  }
  EXPECT_EQ(ids.size(), workload.size());
}

TEST(ServingFleet, WindowServesEveryRequestExactlyOnce) {
  ServingFleet fleet(MachineProfile::emlsgx_pm(), tiny_config(),
                     small_fleet_options(2));
  const std::uint64_t v1 = publish_float(fleet, 1);
  fleet.set_stable(v1);
  EXPECT_EQ(fleet.registry().serving_version(), v1);
  EXPECT_EQ(fleet.replica_version(0), v1);
  EXPECT_EQ(fleet.replica_version(1), v1);
  EXPECT_EQ(fleet.stats().provisions, 2u);

  std::vector<Request> workload = fleet_workload(fleet, 20000.0, 300, 11);
  const FleetWindowReport window = fleet.serve_window(workload);

  expect_one_completion_each(workload, window);
  EXPECT_EQ(window.offered, 300u);
  EXPECT_EQ(window.routed, 300u);
  EXPECT_EQ(window.router_shed, 0u);
  EXPECT_GT(window.served, 0u);
  EXPECT_GT(window.span_ns, 0.0);
  EXPECT_GT(window.goodput_qps, 0.0);
  EXPECT_GT(window.p99_ns, 0.0);
  EXPECT_EQ(window.baseline.replicas, 2u);
  EXPECT_EQ(window.canary.replicas, 0u);
  EXPECT_EQ(window.served, window.baseline.served);
  EXPECT_EQ(fleet.stats().windows, 1u);
}

TEST(ServingFleet, RouterShedsStillGetSealedReplies) {
  FleetOptions opt = small_fleet_options(2);
  opt.router.max_outstanding = 4;  // tiny bound: the burst must overflow it
  ServingFleet fleet(MachineProfile::emlsgx_pm(), tiny_config(), opt);
  fleet.set_stable(publish_float(fleet, 1));

  // An effectively simultaneous burst: arrivals far faster than service.
  std::vector<Request> workload = fleet_workload(fleet, 5e6, 200, 13);
  const FleetWindowReport window = fleet.serve_window(workload);

  expect_one_completion_each(workload, window);
  EXPECT_GT(window.router_shed, 0u);
  EXPECT_EQ(window.routed + window.router_shed, window.offered);
  std::size_t shed_replies = 0;
  for (const Completion& c : window.completions) {
    if (c.status == ReplyStatus::kShedQueueFull) ++shed_replies;
  }
  EXPECT_GE(shed_replies, window.router_shed);
}

TEST(ServingFleet, HealthyCanaryPromotesFleetWide) {
  ServingFleet fleet(MachineProfile::emlsgx_pm(), tiny_config(),
                     small_fleet_options(4));
  const std::uint64_t v1 = publish_float(fleet, 1);
  fleet.set_stable(v1);
  const std::uint64_t v2 = publish_float(fleet, 2);

  ASSERT_TRUE(fleet.begin_rollout(v2));
  EXPECT_EQ(fleet.rollout_phase(), RolloutPhase::kCanary);
  EXPECT_EQ(fleet.registry().record(v2).state, VersionState::kCanary);
  std::size_t canaries = 0;
  for (std::size_t r = 0; r < fleet.replica_count(); ++r) {
    if (fleet.replica_is_canary(r)) {
      ++canaries;
      EXPECT_EQ(fleet.replica_version(r), v2);
    } else {
      EXPECT_EQ(fleet.replica_version(r), v1);
    }
  }
  EXPECT_EQ(canaries, 1u);  // ceil(0.25 * 4)

  // Same architecture and dtype on both cohorts: no regression, and after
  // promote_after healthy windows the canary version goes fleet-wide.
  std::vector<Request> w1 = fleet_workload(fleet, 20000.0, 300, 21);
  const FleetWindowReport r1 = fleet.serve_window(w1);
  EXPECT_FALSE(r1.rolled_back);
  EXPECT_FALSE(r1.promoted);
  EXPECT_GE(r1.canary.served, 10u);

  std::vector<Request> w2 = fleet_workload(fleet, 20000.0, 300, 22);
  const FleetWindowReport r2 = fleet.serve_window(w2);
  EXPECT_TRUE(r2.promoted);
  EXPECT_FALSE(r2.rolled_back);

  EXPECT_EQ(fleet.rollout_phase(), RolloutPhase::kIdle);
  EXPECT_EQ(fleet.stable_version(), v2);
  EXPECT_EQ(fleet.registry().record(v2).state, VersionState::kServing);
  EXPECT_EQ(fleet.registry().record(v1).state, VersionState::kRetired);
  EXPECT_EQ(fleet.registry().serving_version(), v2);
  for (std::size_t r = 0; r < fleet.replica_count(); ++r) {
    EXPECT_EQ(fleet.replica_version(r), v2);
    EXPECT_FALSE(fleet.replica_is_canary(r));
  }
  EXPECT_EQ(fleet.stats().promotions, 1u);
  EXPECT_EQ(fleet.stats().rollbacks, 0u);
}

TEST(ServingFleet, SloRegressionRollsCanaryBack) {
  // A model big enough that forward compute dominates per-request latency —
  // with a trivial model the fixed crypto/ecall overhead hides the dtype gap.
  const ml::ModelConfig config = ml::make_cnn_config(3, 32, 32);
  FleetOptions opt = small_fleet_options(3);
  opt.canary.p99_ratio = 1.3;
  opt.canary.p99_floor_ns = 0;
  opt.canary.promote_after = 8;  // never promotes within this test
  ServingFleet fleet(MachineProfile::emlsgx_pm(), config, opt);

  // Stable tier serves the int8 model; the canary is the float32 version of
  // the same architecture — ~2x slower per forward (int8_gemm_speedup), so
  // its p99 regresses against the baseline cohort on identical traffic.
  const std::uint64_t v1 = publish_int8(fleet, 1, config);
  fleet.set_stable(v1);
  const std::uint64_t v2 = publish_float(fleet, 1, config);
  ASSERT_TRUE(fleet.begin_rollout(v2));

  std::vector<Request> workload = fleet_workload(fleet, 20000.0, 400, 31);
  const FleetWindowReport window = fleet.serve_window(workload);

  expect_one_completion_each(workload, window);
  ASSERT_GE(window.canary.served, 10u);
  EXPECT_GT(window.canary.p99_ns, window.baseline.p99_ns * 1.3);
  EXPECT_TRUE(window.rolled_back);
  EXPECT_FALSE(window.promoted);

  EXPECT_EQ(fleet.rollout_phase(), RolloutPhase::kIdle);
  EXPECT_EQ(fleet.stable_version(), v1);
  EXPECT_EQ(fleet.registry().record(v2).state, VersionState::kRejected);
  EXPECT_EQ(fleet.registry().serving_version(), v1);
  for (std::size_t r = 0; r < fleet.replica_count(); ++r) {
    EXPECT_EQ(fleet.replica_version(r), v1);
    EXPECT_FALSE(fleet.replica_is_canary(r));
  }
  EXPECT_EQ(fleet.stats().rollbacks, 1u);

  // The fleet keeps serving the stable version cleanly after the rollback.
  std::vector<Request> after = fleet_workload(fleet, 20000.0, 200, 32);
  const FleetWindowReport next = fleet.serve_window(after);
  EXPECT_GT(next.served, 0u);
  EXPECT_EQ(next.canary.replicas, 0u);
}

// Satellite: a tampered registry record must fail the canary reload closed —
// the old version keeps serving, the rollout rolls back fleet-wide, and no
// request observes a failure.
TEST(ServingFleet, CorruptCanaryRollsBackWithZeroFailedRequests) {
  ServingFleet fleet(MachineProfile::emlsgx_pm(), tiny_config(),
                     small_fleet_options(3));
  const std::uint64_t v1 = publish_float(fleet, 1);
  fleet.set_stable(v1);
  const std::uint64_t v2 = publish_float(fleet, 2);

  // Corrupt v2's sealed bytes on the control plane's PM media.
  const auto [off, len] = fleet.registry().sealed_extent(v2);
  ASSERT_GT(len, 32u);
  fleet.control_romulus().main_base()[off + 20] ^= 0x01;

  EXPECT_FALSE(fleet.begin_rollout(v2));
  EXPECT_EQ(fleet.rollout_phase(), RolloutPhase::kIdle);
  EXPECT_EQ(fleet.registry().record(v2).state, VersionState::kRejected);
  EXPECT_GE(fleet.stats().reload_failures, 1u);
  EXPECT_GE(fleet.registry().stats().load_failures, 1u);
  EXPECT_EQ(fleet.stats().rollbacks, 1u);
  for (std::size_t r = 0; r < fleet.replica_count(); ++r) {
    EXPECT_EQ(fleet.replica_version(r), v1);  // old version kept serving
    EXPECT_FALSE(fleet.replica_is_canary(r));
  }

  // Zero failed requests: every request of the next window completes with a
  // sealed reply and none fails authentication or expires.
  std::vector<Request> workload = fleet_workload(fleet, 20000.0, 300, 41);
  const FleetWindowReport window = fleet.serve_window(workload);
  expect_one_completion_each(workload, window);
  for (const Completion& c : window.completions) {
    EXPECT_NE(c.status, ReplyStatus::kAuthFailed);
    EXPECT_NE(c.status, ReplyStatus::kExpired);
  }
  EXPECT_EQ(window.baseline.auth_failed, 0u);
  EXPECT_EQ(window.baseline.expired, 0u);
  EXPECT_GT(window.served, 0u);
  EXPECT_EQ(fleet.registry().serving_version(), v1);
}

TEST(ServingFleet, AutoscalerGrowsFleetAndProvisionsJoiners) {
  FleetOptions opt = small_fleet_options(1);
  opt.autoscale = true;
  opt.autoscaler.min_replicas = 1;
  opt.autoscaler.max_replicas = 3;
  opt.autoscaler.p99_high_us = 1.0;  // any real window breaches this
  opt.autoscaler.cooldown_windows = 0;
  opt.autoscaler.step = 1;
  ServingFleet fleet(MachineProfile::emlsgx_pm(), tiny_config(), opt);
  const std::uint64_t v1 = publish_float(fleet, 1);
  fleet.set_stable(v1);

  std::vector<Request> w1 = fleet_workload(fleet, 20000.0, 200, 51);
  const FleetWindowReport r1 = fleet.serve_window(w1);
  EXPECT_EQ(r1.replicas_begin, 1u);
  EXPECT_EQ(r1.scale_delta, 1);
  EXPECT_EQ(r1.replicas_end, 2u);
  ASSERT_EQ(fleet.replica_count(), 2u);
  // The joiner attested in (key provisioning) and got the stable weights.
  EXPECT_EQ(fleet.stats().provisions, 2u);
  EXPECT_EQ(fleet.replica_version(1), v1);
  EXPECT_EQ(fleet.stats().scale_ups, 1u);

  // The new replica serves traffic in the next window.
  std::vector<Request> w2 = fleet_workload(fleet, 20000.0, 200, 52);
  const FleetWindowReport r2 = fleet.serve_window(w2);
  EXPECT_EQ(r2.replicas_begin, 2u);
  EXPECT_GT(r2.served, 0u);
}

TEST(ServingFleet, AutoscalerShrinksIdleFleetToFloor) {
  FleetOptions opt = small_fleet_options(3);
  opt.autoscale = true;
  opt.autoscaler.min_replicas = 1;
  opt.autoscaler.max_replicas = 4;
  opt.autoscaler.p99_high_us = 1e12;  // scale-up never fires
  opt.autoscaler.queue_high = 1e12;
  opt.autoscaler.util_low = 2.0;  // utilization < 2 always: always shrink
  opt.autoscaler.cooldown_windows = 0;
  ServingFleet fleet(MachineProfile::emlsgx_pm(), tiny_config(), opt);
  fleet.set_stable(publish_float(fleet, 1));

  for (int window = 0; window < 3; ++window) {
    std::vector<Request> w =
        fleet_workload(fleet, 5000.0, 60, 61 + static_cast<std::uint64_t>(window));
    fleet.serve_window(w);
  }
  EXPECT_EQ(fleet.replica_count(), 1u);  // 3 -> 2 -> 1, clamped at the floor
  EXPECT_EQ(fleet.stats().scale_downs, 2u);
}

TEST(ServingFleet, PublishesRouterAndRegistryGauges) {
  ServingFleet fleet(MachineProfile::emlsgx_pm(), tiny_config(),
                     small_fleet_options(2));
  fleet.set_stable(publish_float(fleet, 1));
  std::vector<Request> workload = fleet_workload(fleet, 20000.0, 200, 71);
  fleet.serve_window(workload);

  obs::Registry& obs = fleet.obs_registry();
  EXPECT_GT(obs.gauge("router.p99_us"), 0.0);
  EXPECT_DOUBLE_EQ(obs.gauge("router.replicas"), 2.0);
  EXPECT_GE(obs.gauge("router.utilization"), 0.0);
  EXPECT_DOUBLE_EQ(obs.gauge("registry.versions"), 1.0);
  EXPECT_DOUBLE_EQ(obs.gauge("registry.serving_version"), 1.0);
  EXPECT_GT(obs.gauge("registry.sealed_bytes"), 0.0);
  EXPECT_EQ(obs.counter("router.offered"), 200u);
  EXPECT_GT(obs.counter("router.served"), 0u);
  EXPECT_EQ(obs.counter("registry.publishes"), 1u);

  const std::string json = obs.snapshot_json();
  for (const char* name : {"router.p99_us", "router.queue_depth",
                           "router.utilization", "router.replicas",
                           "registry.versions", "registry.serving_version"}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace plinius::serve::fleet
