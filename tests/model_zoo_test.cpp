// Every bundled model config must parse, build, train a step and make
// finite predictions. Run from the repo root or the build directory.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "common/error.h"
#include "ml/config.h"
#include "ml/synth_digits.h"

namespace plinius::ml {
namespace {

std::string find_models_dir() {
  for (const char* candidate : {"data/models", "../data/models", "../../data/models"}) {
    std::ifstream probe(std::string(candidate) + "/lenet5.cfg");
    if (probe.good()) return candidate;
  }
  return "";
}

class ModelZooTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ModelZooTest, ParsesBuildsAndTrains) {
  const std::string dir = find_models_dir();
  if (dir.empty()) GTEST_SKIP() << "data/models not reachable from cwd";

  const auto config = ModelConfig::from_file(dir + "/" + GetParam());
  Rng rng(1);
  Network net = build_network(config, rng);
  ASSERT_GT(net.num_layers(), 0u);
  ASSERT_EQ(net.output_shape().size(), kDigitClasses);
  ASSERT_EQ(net.input_shape(), (Shape{1, 28, 28}));

  SynthDigitsOptions dopt;
  dopt.train_count = 256;
  dopt.test_count = 32;
  const auto digits = make_synth_digits(dopt);

  const std::size_t batch = 16;  // small batch keeps the zoo sweep fast
  std::vector<float> bx(batch * kDigitPixels), by(batch * kDigitClasses);
  Rng br(2);
  sample_batch(digits.train, batch, br, bx.data(), by.data());

  float first = 0;
  for (int i = 0; i < 5; ++i) {
    const float loss = net.train_batch(bx.data(), by.data(), batch);
    ASSERT_TRUE(std::isfinite(loss)) << "iteration " << i;
    if (i == 0) first = loss;
  }
  EXPECT_GT(first, 0.0f);

  std::vector<std::size_t> pred(batch);
  net.predict(bx.data(), batch, pred.data());
  for (const auto p : pred) EXPECT_LT(p, kDigitClasses);
}

INSTANTIATE_TEST_SUITE_P(Configs, ModelZooTest,
                         ::testing::Values("lenet5.cfg", "paper_5layer.cfg",
                                           "mlp_dropout.cfg", "convnet_avgpool.cfg"));

TEST(ModelZoo, MissingFileThrows) {
  EXPECT_THROW((void)ModelConfig::from_file("/nonexistent/model.cfg"), MlError);
}

}  // namespace
}  // namespace plinius::ml
