// GEMM oracle tests: the blocked/panel-packed/parallel kernels in ml/gemm.h
// against the trivially-correct reference kernels in ml/gemm_reference.h,
// over all four transpose variants, awkward shapes (tile remainders, vectors,
// empty dimensions), alpha values, and C-accumulation — plus the bitwise
// serial-vs-parallel identity the kernels guarantee by construction.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "ml/gemm.h"
#include "ml/gemm_reference.h"

namespace {

using namespace plinius;

struct Shape {
  std::size_t m, n, k;
};

// Tile sizes in ml/gemm.cc are MR=4, NR=16, KC=256: cover below, at, and
// above every boundary, plus degenerate vectors.
const Shape kShapes[] = {
    {1, 1, 1},   {1, 16, 7},  {3, 15, 5},   {4, 16, 16},  {5, 17, 31},
    {7, 33, 64}, {8, 48, 96}, {13, 29, 257}, {16, 64, 300}, {31, 80, 40},
    {64, 1, 64}, {1, 64, 64}, {33, 100, 20},
};

// Fills with values whose products stay well-scaled so a relative tolerance
// is meaningful.
std::vector<float> random_matrix(std::size_t len, Rng& rng) {
  std::vector<float> v(len);
  for (auto& x : v) x = rng.normal();
  return v;
}

void expect_close(const std::vector<float>& got, const std::vector<float>& want,
                  std::size_t k, const char* what, const Shape& s) {
  ASSERT_EQ(got.size(), want.size());
  // The blocked kernel reassociates the K reduction (register accumulators,
  // FMA); allow rounding proportional to the reduction length.
  const float tol = 1e-6f * std::sqrt(static_cast<float>(k + 1)) * 32.0f;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const float scale = std::max(1.0f, std::fabs(want[i]));
    ASSERT_NEAR(got[i], want[i], tol * scale)
        << what << " mismatch at " << i << " for m=" << s.m << " n=" << s.n
        << " k=" << s.k;
  }
}

using GemmFn = void (*)(std::size_t, std::size_t, std::size_t, float, const float*,
                        const float*, float*);

void check_variant(GemmFn fast, GemmFn oracle, bool ta, bool tb, const char* what) {
  Rng rng(0xC0FFEE ^ (ta ? 1 : 0) ^ (tb ? 2 : 0));
  for (const Shape& s : kShapes) {
    for (const float alpha : {1.0f, 0.5f, -2.0f}) {
      const auto a = random_matrix(s.m * s.k, rng);
      const auto b = random_matrix(s.k * s.n, rng);
      // Nonzero C: the kernels must accumulate, not overwrite.
      const auto c0 = random_matrix(s.m * s.n, rng);
      std::vector<float> got = c0, want = c0;
      fast(s.m, s.n, s.k, alpha, a.data(), b.data(), got.data());
      oracle(s.m, s.n, s.k, alpha, a.data(), b.data(), want.data());
      expect_close(got, want, s.k, what, s);
    }
  }
}

TEST(GemmOracle, NN) { check_variant(ml::gemm_nn, ml::reference::gemm_nn, false, false, "nn"); }
TEST(GemmOracle, NT) { check_variant(ml::gemm_nt, ml::reference::gemm_nt, false, true, "nt"); }
TEST(GemmOracle, TN) { check_variant(ml::gemm_tn, ml::reference::gemm_tn, true, false, "tn"); }
TEST(GemmOracle, TT) { check_variant(ml::gemm_tt, ml::reference::gemm_tt, true, true, "tt"); }

TEST(GemmOracle, DispatchMatchesVariants) {
  Rng rng(7);
  const Shape s{9, 21, 33};
  const auto a = random_matrix(s.m * s.k, rng);
  const auto b = random_matrix(s.k * s.n, rng);
  const auto c0 = random_matrix(s.m * s.n, rng);
  for (const bool ta : {false, true}) {
    for (const bool tb : {false, true}) {
      std::vector<float> via_dispatch = c0, via_ref = c0;
      ml::gemm(ta, tb, s.m, s.n, s.k, 1.25f, a.data(), b.data(), via_dispatch.data());
      ml::reference::gemm(ta, tb, s.m, s.n, s.k, 1.25f, a.data(), b.data(),
                          via_ref.data());
      expect_close(via_dispatch, via_ref, s.k, "dispatch", s);
    }
  }
}

TEST(GemmOracle, EmptyDimensionsAreNoOps) {
  const std::vector<float> a(64, 1.0f), b(64, 1.0f);
  std::vector<float> c(64, 3.0f);
  const std::vector<float> c0 = c;
  ml::gemm_nn(0, 8, 8, 1.0f, a.data(), b.data(), c.data());
  ml::gemm_nt(8, 0, 8, 1.0f, a.data(), b.data(), c.data());
  ml::gemm_tn(8, 8, 0, 1.0f, a.data(), b.data(), c.data());
  EXPECT_EQ(c, c0);
}

// The determinism contract: bitwise-identical C at every thread count.
TEST(GemmDeterminism, BitwiseIdenticalAcrossThreadCounts) {
  Rng rng(0xDE7);
  const Shape shapes[] = {{64, 64, 64}, {37, 53, 129}, {128, 100, 80}};
  const std::size_t saved = par::max_threads();
  for (const Shape& s : shapes) {
    const auto a = random_matrix(s.m * s.k, rng);
    const auto b = random_matrix(s.k * s.n, rng);
    const auto c0 = random_matrix(s.m * s.n, rng);

    par::set_max_threads(1);
    std::vector<float> serial = c0;
    ml::gemm_nn(s.m, s.n, s.k, 1.0f, a.data(), b.data(), serial.data());

    for (const std::size_t threads : {2, 4, 8}) {
      par::set_max_threads(threads);
      std::vector<float> parallel = c0;
      ml::gemm_nn(s.m, s.n, s.k, 1.0f, a.data(), b.data(), parallel.data());
      EXPECT_EQ(0, std::memcmp(serial.data(), parallel.data(),
                               serial.size() * sizeof(float)))
          << "thread count " << threads << " changed bits for m=" << s.m;
    }
  }
  par::set_max_threads(saved);
}

}  // namespace
