#include <gtest/gtest.h>

#include "common/error.h"
#include "ml/config.h"
#include "ml/synth_digits.h"
#include "spot/simulator.h"
#include "spot/trace.h"

namespace plinius::spot {
namespace {

TEST(SpotTrace, CsvRoundTrip) {
  SpotTrace t;
  t.entries = {{0, 0.09}, {300, 0.0951}, {600, 0.12}};
  const auto again = SpotTrace::parse_csv(t.to_csv());
  ASSERT_EQ(again.size(), 3u);
  EXPECT_DOUBLE_EQ(again.entries[1].price, 0.0951);
  EXPECT_DOUBLE_EQ(again.entries[2].timestamp_s, 600);
}

TEST(SpotTrace, ParseRejectsGarbage) {
  EXPECT_THROW(SpotTrace::parse_csv(""), Error);
  EXPECT_THROW(SpotTrace::parse_csv("justonefield\n"), Error);
  EXPECT_THROW(SpotTrace::parse_csv("t,p\n1,2\nbad,line,here\nmore,bad\n"), Error);
  // Header is tolerated.
  EXPECT_NO_THROW(SpotTrace::parse_csv("timestamp,price\n0,0.09\n"));
}

TEST(SpotTrace, SyntheticIsDeterministicWithSpikes) {
  const auto a = SpotTrace::synthetic(500, 7);
  const auto b = SpotTrace::synthetic(500, 7);
  ASSERT_EQ(a.size(), 500u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_DOUBLE_EQ(a.entries[i].price, b.entries[i].price);
  }
  // 5-minute spacing.
  EXPECT_DOUBLE_EQ(a.entries[1].timestamp_s - a.entries[0].timestamp_s, 300.0);
  // Prices hover around base but occasionally exceed the paper's bid.
  int above_bid = 0;
  for (const auto& e : a.entries) {
    EXPECT_GT(e.price, 0.05);
    EXPECT_LT(e.price, 0.2);
    above_bid += e.price > 0.0955;
  }
  EXPECT_GT(above_bid, 0);
  EXPECT_LT(above_bid, 250);  // excursions, not the norm
}

class SpotSimTest : public ::testing::Test {
 protected:
  SpotSimTest() : config_(ml::make_cnn_config(2, 4, 8)) {
    ml::SynthDigitsOptions opt;
    opt.train_count = 128;
    opt.test_count = 1;
    data_ = make_synth_digits(opt).train;
  }

  ml::ModelConfig config_;
  ml::Dataset data_;
};

TEST_F(SpotSimTest, CompletesWithoutInterruptionWhenBidAlwaysWins) {
  Platform platform(MachineProfile::emlsgx_pm(), 48 * 1024 * 1024);
  SpotTrace calm;
  for (int i = 0; i < 20; ++i) {
    calm.entries.push_back({i * 300.0, 0.05});  // always below bid
  }
  SpotRunOptions opt;
  opt.target_iterations = 40;
  opt.iterations_per_tick = 10;
  const auto result = run_spot_training(platform, config_, data_, calm, opt);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.interruptions, 0u);
  EXPECT_EQ(result.executed_iterations, 40u);
  EXPECT_EQ(result.losses.size(), 40u);
  // Exactly 4 running ticks (10 iterations each) reach the target.
  EXPECT_EQ(result.state_curve, (std::vector<int>{1, 1, 1, 1}));
}

TEST_F(SpotSimTest, ResilientRunSurvivesInterruptionsWithoutRedoingWork) {
  Platform platform(MachineProfile::emlsgx_pm(), 48 * 1024 * 1024);
  SpotTrace trace;
  // run 2 ticks, outbid 2 ticks, run to completion.
  const double lo = 0.05, hi = 0.2;
  for (const double p : {lo, lo, hi, hi, lo, lo, lo, lo, lo, lo}) {
    trace.entries.push_back({trace.entries.size() * 300.0, p});
  }
  SpotRunOptions opt;
  opt.target_iterations = 50;
  opt.iterations_per_tick = 10;
  const auto result = run_spot_training(platform, config_, data_, trace, opt);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.interruptions, 1u);
  // Mirroring means no iteration is ever redone: exactly 50 executed.
  EXPECT_EQ(result.executed_iterations, 50u);
  EXPECT_EQ(result.final_model_iteration, 50u);
  // State curve shows the outage.
  ASSERT_GE(result.state_curve.size(), 4u);
  EXPECT_EQ(result.state_curve[2], 0);
  EXPECT_EQ(result.state_curve[3], 0);
}

TEST_F(SpotSimTest, NonResilientRunRedoesWork) {
  Platform platform(MachineProfile::emlsgx_pm(), 48 * 1024 * 1024);
  SpotTrace trace;
  const double lo = 0.05, hi = 0.2;
  for (const double p : {lo, lo, hi, lo, lo, lo, lo, lo, lo, lo, lo, lo}) {
    trace.entries.push_back({trace.entries.size() * 300.0, p});
  }
  SpotRunOptions opt;
  opt.target_iterations = 50;
  opt.iterations_per_tick = 10;
  opt.trainer.backend = CheckpointBackend::kNone;
  const auto result = run_spot_training(platform, config_, data_, trace, opt);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.interruptions, 1u);
  // 20 iterations were lost to the kill and redone: 70 executed for 50.
  EXPECT_EQ(result.executed_iterations, 70u);
}

TEST_F(SpotSimTest, InterruptionDetailRecordsMirrorRecovery) {
  Platform platform(MachineProfile::emlsgx_pm(), 48 * 1024 * 1024);
  SpotTrace trace;
  const double lo = 0.05, hi = 0.2;
  for (const double p : {lo, lo, hi, hi, lo, lo, lo, lo, lo, lo}) {
    trace.entries.push_back({trace.entries.size() * 300.0, p});
  }
  SpotRunOptions opt;
  opt.target_iterations = 50;
  opt.iterations_per_tick = 10;
  const auto result = run_spot_training(platform, config_, data_, trace, opt);
  ASSERT_TRUE(result.completed);
  ASSERT_EQ(result.interruption_detail.size(), result.interruptions);
  ASSERT_EQ(result.interruption_detail.size(), 1u);
  const InterruptionRecord& rec = result.interruption_detail[0];
  EXPECT_EQ(rec.tick, 2u);  // first outbid tick
  EXPECT_EQ(rec.killed_at_iteration, 20u);
  // Per-iteration mirroring: the revival resumes exactly where the kill
  // struck, through the mirror rung of the recovery ladder.
  EXPECT_EQ(rec.tier, RecoveryTier::kMirror);
  EXPECT_EQ(rec.resume_iteration, 20u);
  EXPECT_EQ(rec.redone_iterations(), 0u);
  EXPECT_EQ(result.redone_iterations, 0u);
}

TEST_F(SpotSimTest, InterruptionDetailCountsRedoneWorkWhenNonResilient) {
  Platform platform(MachineProfile::emlsgx_pm(), 48 * 1024 * 1024);
  SpotTrace trace;
  const double lo = 0.05, hi = 0.2;
  for (const double p : {lo, lo, hi, lo, lo, lo, lo, lo, lo, lo, lo, lo}) {
    trace.entries.push_back({trace.entries.size() * 300.0, p});
  }
  SpotRunOptions opt;
  opt.target_iterations = 50;
  opt.iterations_per_tick = 10;
  opt.trainer.backend = CheckpointBackend::kNone;
  const auto result = run_spot_training(platform, config_, data_, trace, opt);
  ASSERT_TRUE(result.completed);
  ASSERT_EQ(result.interruption_detail.size(), 1u);
  const InterruptionRecord& rec = result.interruption_detail[0];
  EXPECT_EQ(rec.killed_at_iteration, 20u);
  EXPECT_EQ(rec.resume_iteration, 0u);  // no persistence: back to zero
  EXPECT_EQ(rec.redone_iterations(), 20u);
  EXPECT_EQ(result.redone_iterations, 20u);
  EXPECT_EQ(result.executed_iterations,
            opt.target_iterations + result.redone_iterations);
}

TEST_F(SpotSimTest, UnrevivedKillKeepsOpenInterruptionRecord) {
  Platform platform(MachineProfile::emlsgx_pm(), 48 * 1024 * 1024);
  SpotTrace trace;
  trace.entries.push_back({0.0, 0.05});   // one productive tick…
  trace.entries.push_back({300.0, 0.5});  // …then outbid to the end
  trace.entries.push_back({600.0, 0.5});
  SpotRunOptions opt;
  opt.target_iterations = 50;
  opt.iterations_per_tick = 10;
  const auto result = run_spot_training(platform, config_, data_, trace, opt);
  EXPECT_FALSE(result.completed);
  ASSERT_EQ(result.interruption_detail.size(), 1u);
  // The process never restarted: the record keeps its pre-revival shape.
  EXPECT_EQ(result.interruption_detail[0].tier, RecoveryTier::kNone);
  EXPECT_EQ(result.interruption_detail[0].killed_at_iteration, 10u);
  EXPECT_EQ(result.redone_iterations, 0u);
}

TEST_F(SpotSimTest, IncompleteWhenTraceTooHostile) {
  Platform platform(MachineProfile::emlsgx_pm(), 48 * 1024 * 1024);
  SpotTrace hostile;
  for (int i = 0; i < 5; ++i) hostile.entries.push_back({i * 300.0, 0.5});
  SpotRunOptions opt;
  opt.target_iterations = 50;
  const auto result = run_spot_training(platform, config_, data_, hostile, opt);
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.executed_iterations, 0u);
  EXPECT_EQ(result.state_curve, (std::vector<int>{0, 0, 0, 0, 0}));
}

}  // namespace
}  // namespace plinius::spot
