#include <gtest/gtest.h>

#include <map>

#include "common/clock.h"
#include "common/error.h"
#include "common/log.h"
#include "ml/augment.h"
#include "ml/synth_digits.h"
#include "pm/device.h"
#include "romulus/pmap.h"

namespace plinius {
namespace {

using romulus::PersistentMap;
using romulus::PwbPolicy;
using romulus::Romulus;

class PMapTest : public ::testing::Test {
 protected:
  PMapTest()
      : dev_(clock_, Romulus::region_bytes(kMain), pm::PmLatencyModel::optane(), 3),
        rom_(dev_, 0, kMain, PwbPolicy::clflushopt_sfence(), true) {}

  static constexpr std::size_t kMain = 2 * 1024 * 1024;
  sim::Clock clock_;
  pm::PmDevice dev_;
  Romulus rom_;
};

TEST_F(PMapTest, CreatePutGetErase) {
  std::size_t map_off = 0;
  rom_.run_transaction([&] {
    auto map = PersistentMap::create(rom_, 100);
    map_off = map.header_offset();
    rom_.set_root(4, map_off);
    map.put(42, 1000);
    map.put(7, 2000);
  });

  auto map = PersistentMap::attach(rom_, rom_.root(4));
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.get(42), 1000u);
  EXPECT_EQ(map.get(7), 2000u);
  EXPECT_EQ(map.get(8), std::nullopt);

  rom_.run_transaction([&] {
    map.put(42, 1111);             // update
    EXPECT_TRUE(map.erase(7));
    EXPECT_FALSE(map.erase(999));  // absent
  });
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.get(42), 1111u);
  EXPECT_EQ(map.get(7), std::nullopt);
}

TEST_F(PMapTest, RequiresTransactionsForMutation) {
  std::size_t off = 0;
  rom_.run_transaction([&] { off = PersistentMap::create(rom_, 10).header_offset(); });
  auto map = PersistentMap::attach(rom_, off);
  EXPECT_THROW(map.put(1, 1), Error);
  EXPECT_THROW((void)map.erase(1), Error);
  EXPECT_THROW({ rom_.run_transaction([&] { (void)PersistentMap::attach(rom_, 64); }); },
               PmError);
}

TEST_F(PMapTest, FillsToCapacityThenThrows) {
  std::size_t off = 0;
  rom_.run_transaction([&] {
    auto map = PersistentMap::create(rom_, 32);
    off = map.header_offset();
    // Physical slots > requested capacity; fill every slot.
    for (std::uint64_t k = 0; k < map.capacity(); ++k) map.put(k, k * 10);
    EXPECT_THROW(map.put(10000, 1), PmError);
  });
  auto map = PersistentMap::attach(rom_, off);
  for (std::uint64_t k = 0; k < map.capacity(); ++k) EXPECT_EQ(map.get(k), k * 10);
}

TEST_F(PMapTest, TombstonesAreReused) {
  std::size_t off = 0;
  rom_.run_transaction([&] {
    auto map = PersistentMap::create(rom_, 16);
    off = map.header_offset();
    for (std::uint64_t k = 0; k < map.capacity(); ++k) map.put(k, k);
    // Full; erase a few and reinsert different keys into the tombstones.
    EXPECT_TRUE(map.erase(3));
    EXPECT_TRUE(map.erase(5));
    map.put(100, 100);
    map.put(101, 101);
    EXPECT_EQ(map.get(100), 100u);
    EXPECT_EQ(map.get(101), 101u);
    EXPECT_EQ(map.get(3), std::nullopt);
  });
}

TEST_F(PMapTest, ForEachVisitsExactlyLiveEntries) {
  std::size_t off = 0;
  rom_.run_transaction([&] {
    auto map = PersistentMap::create(rom_, 50);
    off = map.header_offset();
    for (std::uint64_t k = 10; k < 30; ++k) map.put(k, k * 2);
    (void)map.erase(15);
  });
  auto map = PersistentMap::attach(rom_, off);
  std::map<std::uint64_t, std::uint64_t> seen;
  map.for_each([&](std::uint64_t k, std::uint64_t v) { seen[k] = v; });
  EXPECT_EQ(seen.size(), 19u);
  EXPECT_FALSE(seen.contains(15));
  EXPECT_EQ(seen[20], 40u);
}

TEST_F(PMapTest, CommittedEntriesSurviveCrashUncommittedDoNot) {
  std::size_t off = 0;
  rom_.run_transaction([&] {
    auto map = PersistentMap::create(rom_, 50);
    off = map.header_offset();
    rom_.set_root(4, off);
    map.put(1, 100);
  });
  // Uncommitted put dies with the crash.
  EXPECT_THROW(rom_.run_transaction([&] {
    auto map = PersistentMap::attach(rom_, off);
    map.put(2, 200);
    throw SimulatedCrash("pmap");
  }),
               SimulatedCrash);
  dev_.crash();

  Romulus recovered(dev_, 0, kMain, PwbPolicy::clflushopt_sfence());
  auto map = PersistentMap::attach(recovered, recovered.root(4));
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.get(1), 100u);
  EXPECT_EQ(map.get(2), std::nullopt);
}

// Randomized shadow-model sweep.
class PMapRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PMapRandomized, MatchesStdMap) {
  sim::Clock clock;
  constexpr std::size_t kMain = 2 * 1024 * 1024;
  pm::PmDevice dev(clock, Romulus::region_bytes(kMain), pm::PmLatencyModel::optane());
  Romulus rom(dev, 0, kMain, PwbPolicy::clflushopt_sfence(), true);
  Rng rng(GetParam());

  std::size_t off = 0;
  rom.run_transaction([&] { off = PersistentMap::create(rom, 200).header_offset(); });
  auto map = PersistentMap::attach(rom, off);
  std::map<std::uint64_t, std::uint64_t> shadow;

  for (int op = 0; op < 600; ++op) {
    const std::uint64_t key = rng.below(120);  // collisions guaranteed
    if (rng.below(3) == 0 && !shadow.empty()) {
      rom.run_transaction([&] {
        const bool erased = map.erase(key);
        EXPECT_EQ(erased, shadow.erase(key) > 0);
      });
    } else if (shadow.size() < 190) {
      const std::uint64_t value = rng.next();
      rom.run_transaction([&] { map.put(key, value); });
      shadow[key] = value;
    }
    if (op % 50 == 0) {
      for (const auto& [k, v] : shadow) ASSERT_EQ(map.get(k), v);
      ASSERT_EQ(map.size(), shadow.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PMapRandomized, ::testing::Values(1, 2, 3, 4, 5));

// --- Augmenter --------------------------------------------------------------------

TEST(Augment, DisabledIsIdentity) {
  ml::AugmentOptions opt;
  opt.enabled = false;
  ml::Augmenter aug(ml::Shape{1, 28, 28}, opt, 1);
  std::vector<float> x(784, 0.5f);
  const auto before = x;
  aug.apply(x.data(), 1);
  EXPECT_EQ(x, before);
}

TEST(Augment, ShiftMovesMass) {
  ml::AugmentOptions opt;
  opt.max_shift = 3;
  opt.noise_stddev = 0;
  opt.intensity_jitter = 0;
  ml::Augmenter aug(ml::Shape{1, 8, 8}, opt, 5);
  // Single bright pixel in the center; after augmentation it must still be
  // exactly one bright pixel, within +/-3 of the center.
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> x(64, 0.0f);
    x[3 * 8 + 3] = 1.0f;
    aug.apply(x.data(), 1);
    int bright = 0, pos = -1;
    for (int i = 0; i < 64; ++i) {
      if (x[i] == 1.0f) {
        ++bright;
        pos = i;
      }
    }
    ASSERT_EQ(bright, 1);
    const int y = pos / 8, xx = pos % 8;
    EXPECT_LE(std::abs(y - 3), 3);
    EXPECT_LE(std::abs(xx - 3), 3);
  }
}

TEST(Augment, OutputStaysInRange) {
  ml::Augmenter aug(ml::Shape{1, 28, 28}, ml::AugmentOptions{}, 9);
  ml::SynthDigitsOptions dopt;
  dopt.train_count = 8;
  dopt.test_count = 1;
  auto digits = ml::make_synth_digits(dopt);
  aug.apply(digits.train.x.values.data(), digits.train.size());
  for (const float v : digits.train.x.values) {
    ASSERT_GE(v, 0.0f);
    ASSERT_LE(v, 1.0f);
  }
}

TEST(Augment, RejectsOversizedShift) {
  ml::AugmentOptions opt;
  opt.max_shift = 30;
  EXPECT_THROW(ml::Augmenter(ml::Shape{1, 28, 28}, opt, 1), Error);
}

// --- logger ------------------------------------------------------------------------

TEST(Log, ThresholdFilters) {
  const auto saved = log::threshold();
  log::set_threshold(log::Level::kError);
  EXPECT_EQ(log::threshold(), log::Level::kError);
  // These must be no-ops (nothing observable to assert beyond not crashing,
  // but the formatting path with arguments is exercised).
  log::debug("dropped %d", 1);
  log::info("dropped %s", "too");
  log::warn("dropped %f", 2.0);
  log::set_threshold(log::Level::kOff);
  log::error("dropped as well (%d)", 3);
  log::set_threshold(saved);
}

}  // namespace
}  // namespace plinius
