#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/error.h"
#include "ml/config.h"
#include "ml/metrics.h"
#include "ml/synth_digits.h"
#include "sgx/untrusted_io.h"

namespace plinius {
namespace {

// --- UntrustedIo (the ocall-wrapped stdio layer) ---------------------------------

class UntrustedIoTest : public ::testing::Test {
 protected:
  UntrustedIoTest()
      : fs_(clock_, storage::StorageCostModel::ext4_ssd()),
        enclave_(clock_, sgx::SgxCostModel::hardware(), "io-test"),
        io_(enclave_, fs_) {}

  sim::Clock clock_;
  storage::SimFileSystem fs_;
  sgx::EnclaveRuntime enclave_;
  sgx::UntrustedIo io_;
};

TEST_F(UntrustedIoTest, WriteReadRoundTrip) {
  Bytes payload(10000);
  Rng(1).fill(payload.data(), payload.size());
  {
    auto f = io_.fopen("weights.bin", "w");
    EXPECT_EQ(f.fwrite(payload), payload.size());
    f.fsync();
  }
  auto f = io_.fopen("weights.bin", "r");
  EXPECT_EQ(f.size(), payload.size());
  Bytes back(payload.size());
  EXPECT_EQ(f.fread(back), payload.size());
  EXPECT_EQ(back, payload);
  // Sequential position: a second fread hits EOF.
  Bytes more(10);
  EXPECT_EQ(f.fread(more), 0u);
}

TEST_F(UntrustedIoTest, OpenModes) {
  EXPECT_THROW((void)io_.fopen("missing", "r"), StorageError);
  EXPECT_THROW((void)io_.fopen("x", "r+w"), StorageError);

  const Bytes a(100, 1), b(50, 2);
  {
    auto f = io_.fopen("log", "w");
    f.fwrite(a);
  }
  {
    auto f = io_.fopen("log", "a");  // append positions at EOF
    EXPECT_EQ(f.ftell(), 100u);
    f.fwrite(b);
  }
  auto f = io_.fopen("log", "r");
  EXPECT_EQ(f.size(), 150u);
  {
    // "w" truncates.
    auto g = io_.fopen("log", "w");
    (void)g;
  }
  EXPECT_EQ(io_.fopen("log", "r").size(), 0u);
}

TEST_F(UntrustedIoTest, SeekAndPartialReads) {
  Bytes payload(256);
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = static_cast<std::uint8_t>(i);
  {
    auto f = io_.fopen("data", "w");
    f.fwrite(payload);
  }
  auto f = io_.fopen("data", "r");
  f.fseek(200);
  Bytes tail(100);
  EXPECT_EQ(f.fread(tail), 56u);  // short read at EOF
  EXPECT_EQ(tail[0], 200);
  EXPECT_THROW(f.fseek(1000), StorageError);
}

TEST_F(UntrustedIoTest, EveryCallCrossesTheBoundary) {
  const auto before = enclave_.stats().ocalls;
  (void)io_.exists("nope");
  EXPECT_EQ(enclave_.stats().ocalls, before + 1);

  auto f = io_.fopen("f", "w");  // +1
  Bytes big(100 * 1024);          // 100 KiB = 7 edge-buffer chunks
  f.fwrite(big);
  EXPECT_GE(enclave_.stats().ocalls, before + 2 + 7);
  EXPECT_GT(clock_.now(), 0.0);
}

TEST_F(UntrustedIoTest, RemoveSemantics) {
  EXPECT_FALSE(io_.remove("ghost"));
  { auto f = io_.fopen("tmp", "w"); (void)f; }
  EXPECT_TRUE(io_.exists("tmp"));
  EXPECT_TRUE(io_.remove("tmp"));
  EXPECT_FALSE(io_.exists("tmp"));
}

// --- ConfusionMatrix ----------------------------------------------------------------

TEST(Confusion, CountsAndDerivedMetrics) {
  ml::ConfusionMatrix cm(3);
  // truth 0: 8 correct, 2 predicted as 1.
  for (int i = 0; i < 8; ++i) cm.add(0, 0);
  for (int i = 0; i < 2; ++i) cm.add(0, 1);
  // truth 1: 5 correct.
  for (int i = 0; i < 5; ++i) cm.add(1, 1);
  // truth 2: 4 correct, 1 as 0.
  for (int i = 0; i < 4; ++i) cm.add(2, 2);
  cm.add(2, 0);

  EXPECT_EQ(cm.total(), 20u);
  EXPECT_EQ(cm.count(0, 1), 2u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 17.0 / 20.0);
  EXPECT_DOUBLE_EQ(cm.recall(0), 0.8);
  EXPECT_DOUBLE_EQ(cm.precision(0), 8.0 / 9.0);
  EXPECT_DOUBLE_EQ(cm.precision(1), 5.0 / 7.0);
  EXPECT_DOUBLE_EQ(cm.recall(1), 1.0);
  EXPECT_GT(cm.macro_f1(), 0.8);
  EXPECT_THROW(cm.add(3, 0), Error);
  EXPECT_THROW((void)cm.count(0, 3), Error);

  const std::string table = cm.to_string();
  EXPECT_NE(table.find("truth"), std::string::npos);
}

TEST(Confusion, EmptyAndUnseenClasses) {
  ml::ConfusionMatrix cm(2);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
  cm.add(0, 0);
  EXPECT_DOUBLE_EQ(cm.precision(1), 0.0);  // never predicted
  EXPECT_DOUBLE_EQ(cm.recall(1), 0.0);     // never occurred
  EXPECT_THROW(ml::ConfusionMatrix(0), Error);
}

TEST(Confusion, EvaluateOnTrainedNetwork) {
  ml::SynthDigitsOptions dopt;
  dopt.train_count = 1024;
  dopt.test_count = 300;
  const auto digits = ml::make_synth_digits(dopt);

  Rng rng(1);
  ml::Network net = ml::build_network(ml::make_cnn_config(3, 8, 32), rng);
  Rng br(2);
  std::vector<float> bx(32 * ml::kDigitPixels), by(32 * ml::kDigitClasses);
  for (int it = 0; it < 60; ++it) {
    ml::sample_batch(digits.train, 32, br, bx.data(), by.data());
    (void)net.train_batch(bx.data(), by.data(), 32);
  }

  const auto cm = ml::evaluate_confusion(net, digits.test);
  EXPECT_EQ(cm.total(), 300u);
  // Consistency with Network::accuracy.
  const double acc = net.accuracy(digits.test.x.values.data(),
                                  digits.test.y.values.data(), digits.test.size());
  EXPECT_NEAR(cm.accuracy(), acc, 1e-12);
  EXPECT_GT(cm.macro_f1(), 0.3);
}

}  // namespace
}  // namespace plinius
