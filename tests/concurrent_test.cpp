#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "pm/device.h"
#include "romulus/concurrent.h"
#include "romulus/romulus.h"

namespace plinius::romulus {
namespace {

constexpr std::size_t kMain = 1024 * 1024;

class ConcurrentRomulusTest : public ::testing::Test {
 protected:
  ConcurrentRomulusTest()
      : dev_(clock_, Romulus::region_bytes(kMain), pm::PmLatencyModel::optane()),
        rom_(dev_, 0, kMain, PwbPolicy::clflushopt_sfence(), true),
        conc_(rom_) {}

  sim::Clock clock_;
  pm::PmDevice dev_;
  Romulus rom_;
  ConcurrentRomulus conc_;
};

TEST_F(ConcurrentRomulusTest, ManyThreadsIncrementingCounters) {
  constexpr int kThreads = 4;
  constexpr int kIncrementsPerThread = 200;

  std::size_t counters_off = 0;
  conc_.run_transaction([&](Romulus& rom) {
    counters_off = rom.pmalloc(kThreads * 8);
    for (int t = 0; t < kThreads; ++t) {
      rom.tx_assign(counters_off + t * 8, std::uint64_t{0});
    }
    rom.set_root(0, counters_off);
  });

  // Each thread increments its own slot AND a shared slot; the shared slot
  // is the contention check.
  std::size_t shared_off = 0;
  conc_.run_transaction([&](Romulus& rom) {
    shared_off = rom.pmalloc(8);
    rom.tx_assign(shared_off, std::uint64_t{0});
  });

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        conc_.run_transaction([&](Romulus& rom) {
          const auto mine = rom.read<std::uint64_t>(counters_off + t * 8);
          rom.tx_assign(counters_off + t * 8, mine + 1);
          const auto shared = rom.read<std::uint64_t>(shared_off);
          rom.tx_assign(shared_off, shared + 1);
        });
      }
    });
  }
  for (auto& th : threads) th.join();

  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(conc_.read<std::uint64_t>(counters_off + t * 8),
              static_cast<std::uint64_t>(kIncrementsPerThread));
  }
  // No lost updates on the shared counter.
  EXPECT_EQ(conc_.read<std::uint64_t>(shared_off),
            static_cast<std::uint64_t>(kThreads * kIncrementsPerThread));
}

TEST_F(ConcurrentRomulusTest, ConcurrentAllocationsDoNotOverlap) {
  constexpr int kThreads = 4;
  constexpr int kAllocsPerThread = 50;
  std::vector<std::vector<std::size_t>> offsets(kThreads);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kAllocsPerThread; ++i) {
        conc_.run_transaction([&](Romulus& rom) {
          const std::size_t off = rom.pmalloc(64);
          const std::uint64_t tag = (static_cast<std::uint64_t>(t) << 32) | i;
          rom.tx_assign(off, tag);
          offsets[t].push_back(off);
        });
      }
    });
  }
  for (auto& th : threads) th.join();

  // Every allocation is distinct and still holds its tag.
  std::vector<std::size_t> all;
  for (int t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < offsets[t].size(); ++i) {
      all.push_back(offsets[t][i]);
      const std::uint64_t expected = (static_cast<std::uint64_t>(t) << 32) | i;
      EXPECT_EQ(conc_.read<std::uint64_t>(offsets[t][i]), expected);
    }
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
}

TEST_F(ConcurrentRomulusTest, CommittedWorkSurvivesCrashAfterConcurrentPhase) {
  constexpr int kThreads = 3;
  std::atomic<std::uint64_t> committed{0};

  std::size_t off = 0;
  conc_.run_transaction([&](Romulus& rom) {
    off = rom.pmalloc(8);
    rom.tx_assign(off, std::uint64_t{0});
    rom.set_root(1, off);
  });

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 64; ++i) {
        conc_.run_transaction([&](Romulus& rom) {
          rom.tx_assign(off, rom.read<std::uint64_t>(off) + 1);
        });
        committed.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();

  dev_.crash();
  Romulus recovered(dev_, 0, kMain, PwbPolicy::clflushopt_sfence());
  EXPECT_EQ(recovered.read<std::uint64_t>(recovered.root(1)), committed.load());
}

}  // namespace
}  // namespace plinius::romulus
