// Tests for the parallel compute substrate (common/parallel.h), the SGX
// multi-TCS simulated-time accounting (EnclaveRuntime::charge_parallel),
// and the end-to-end determinism contract: a full trainer run is
// bitwise-identical — weights *and* simulated clock — at 1/2/4/8 host
// threads, and parallel mirror sealing never reuses or reorders GCM IVs.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstring>
#include <mutex>
#include <set>
#include <vector>

#include "common/error.h"
#include "common/parallel.h"
#include "ml/config.h"
#include "ml/synth_digits.h"
#include "plinius/mirror.h"
#include "plinius/platform.h"
#include "plinius/trainer.h"
#include "romulus/romulus.h"
#include "sgx/enclave.h"

namespace plinius {
namespace {

// Restores the process-wide thread count on scope exit so tests that sweep
// it cannot leak state into each other.
class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(par::max_threads()) {}
  ~ThreadCountGuard() { par::set_max_threads(saved_); }

 private:
  std::size_t saved_;
};

// --- partition ---------------------------------------------------------------

TEST(Partition, CoversRangeContiguouslyAndBalanced) {
  for (const std::size_t n : {0u, 1u, 7u, 64u, 1000u, 1001u}) {
    for (const std::size_t nchunks : {1u, 2u, 3u, 7u, 8u, 64u}) {
      std::size_t expected_begin = 0;
      for (std::size_t c = 0; c < nchunks; ++c) {
        const par::Range r = par::partition(n, nchunks, c);
        EXPECT_EQ(r.begin, expected_begin) << "n=" << n << " chunk " << c;
        EXPECT_LE(r.begin, r.end);
        // Balanced to within one item.
        EXPECT_LE(r.size(), n / nchunks + 1);
        expected_begin = r.end;
      }
      EXPECT_EQ(expected_begin, n) << "n=" << n << " nchunks=" << nchunks;
    }
  }
}

TEST(Partition, RejectsBadChunkIndex) {
  EXPECT_THROW((void)par::partition(10, 4, 4), Error);
  EXPECT_THROW((void)par::partition(10, 0, 0), Error);
}

// --- threads_from_env --------------------------------------------------------

TEST(ThreadsFromEnv, ParsesAndRejects) {
  EXPECT_EQ(par::threads_from_env(nullptr), 0u);
  EXPECT_EQ(par::threads_from_env(""), 0u);
  EXPECT_EQ(par::threads_from_env("abc"), 0u);
  EXPECT_EQ(par::threads_from_env("0"), 0u);
  EXPECT_EQ(par::threads_from_env("-4"), 0u);
  EXPECT_EQ(par::threads_from_env("8x"), 0u);
  EXPECT_EQ(par::threads_from_env("1"), 1u);
  EXPECT_EQ(par::threads_from_env("8"), 8u);
  EXPECT_EQ(par::threads_from_env("9999"), 256u);  // clamped
}

// --- parallel_for ------------------------------------------------------------

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    par::set_max_threads(threads);
    for (const std::size_t n : {0u, 1u, 5u, 63u, 64u, 1000u}) {
      std::vector<std::atomic<int>> hits(n);
      par::parallel_for(n, [&](par::Range r) {
        for (std::size_t i = r.begin; i < r.end; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " n=" << n;
      }
    }
  }
}

TEST(ParallelFor, GrainBoundsChunkCount) {
  ThreadCountGuard guard;
  par::set_max_threads(8);
  std::mutex mu;
  std::size_t calls = 0;
  // 100 items at grain 40 -> at most ceil(100/40) = 3 chunks even with 8
  // threads available.
  par::parallel_for(100, 40, [&](par::Range r) {
    EXPECT_GE(r.size(), 1u);
    const std::lock_guard<std::mutex> lock(mu);
    ++calls;
  });
  EXPECT_LE(calls, 3u);
  EXPECT_GE(calls, 1u);
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadCountGuard guard;
  par::set_max_threads(4);
  EXPECT_THROW(
      par::parallel_for(64, [](par::Range r) {
        if (r.begin == 0) throw CryptoError("boom");
      }),
      CryptoError);
  // The pool survives an exception and keeps working.
  std::atomic<std::size_t> total{0};
  par::parallel_for(64, [&](par::Range r) { total += r.size(); });
  EXPECT_EQ(total.load(), 64u);
}

TEST(ParallelFor, NestedCallsRunInline) {
  ThreadCountGuard guard;
  par::set_max_threads(4);
  std::vector<std::atomic<int>> hits(16 * 8);
  par::parallel_for(16, [&](par::Range outer) {
    for (std::size_t i = outer.begin; i < outer.end; ++i) {
      par::parallel_for(8, [&](par::Range inner) {
        for (std::size_t j = inner.begin; j < inner.end; ++j) {
          hits[i * 8 + j].fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// --- charge_parallel ---------------------------------------------------------

class ChargeParallelTest : public ::testing::Test {
 protected:
  ChargeParallelTest()
      : enclave_(clock_, sgx::SgxCostModel::hardware(3.8), "t", 1) {}

  sim::Clock clock_;
  sgx::EnclaveRuntime enclave_;
};

TEST_F(ChargeParallelTest, DefaultSingleTcsIsSerialSum) {
  ASSERT_EQ(enclave_.tcs_count(), 1u);
  const std::array<sim::Nanos, 4> costs{100.0, 50.0, 25.0, 25.0};
  const sim::Nanos t0 = clock_.now();
  const sim::Nanos charged = enclave_.charge_parallel(costs);
  EXPECT_DOUBLE_EQ(charged, 200.0);
  EXPECT_DOUBLE_EQ(clock_.now() - t0, 200.0);
}

TEST_F(ChargeParallelTest, MultiTcsChargesCriticalPathLane) {
  enclave_.set_tcs_count(2);
  // partition(4, 2, .) -> lanes {100, 50} and {25, 25}: critical path 150.
  const std::array<sim::Nanos, 4> costs{100.0, 50.0, 25.0, 25.0};
  const sim::Nanos t0 = clock_.now();
  EXPECT_DOUBLE_EQ(enclave_.charge_parallel(costs), 150.0);
  EXPECT_DOUBLE_EQ(clock_.now() - t0, 150.0);
}

TEST_F(ChargeParallelTest, LanesClampToTaskCount) {
  enclave_.set_tcs_count(8);
  // 2 tasks on 8 lanes: one task per lane, critical path = max.
  const std::array<sim::Nanos, 2> costs{30.0, 70.0};
  EXPECT_DOUBLE_EQ(enclave_.charge_parallel(costs), 70.0);
}

TEST_F(ChargeParallelTest, EmptyAndStats) {
  const auto regions_before = enclave_.stats().parallel_regions;
  EXPECT_DOUBLE_EQ(enclave_.charge_parallel({}), 0.0);
  EXPECT_EQ(enclave_.stats().parallel_regions, regions_before);
  const std::array<sim::Nanos, 1> one{5.0};
  (void)enclave_.charge_parallel(one);
  EXPECT_EQ(enclave_.stats().parallel_regions, regions_before + 1);
}

TEST_F(ChargeParallelTest, MoreLanesNeverSlower) {
  const std::vector<sim::Nanos> costs{90, 10, 40, 60, 5, 80, 20, 30, 70, 15};
  sim::Nanos prev = 1e300;
  for (const std::size_t tcs : {1u, 2u, 4u, 8u}) {
    enclave_.set_tcs_count(tcs);
    const sim::Nanos t = enclave_.charge_parallel(costs);
    EXPECT_LE(t, prev) << "tcs=" << tcs;
    prev = t;
  }
}

// --- parallel mirror sealing: IV discipline ---------------------------------

// Mirrors the persistent on-PM layout of MirrorModel (a stable format:
// crash-recovery depends on it). Used to read the sealed buffers' IVs back
// out of PM without going through the decryption path.
struct PmHeader {
  std::uint64_t magic;
  std::uint64_t iteration;
  std::uint64_t num_layers;
  std::uint64_t head;
};
struct PmLayerNode {
  std::uint64_t next;
  std::uint64_t num_buffers;
  std::uint64_t buf_off[8];
  std::uint64_t buf_sealed_len[8];
};

// Collects the GCM IV counters (big-endian bytes 4..11 of each sealed
// buffer's 12-byte IV prefix) in mirror list order.
std::vector<std::uint64_t> iv_counters(romulus::Romulus& rom) {
  const auto header_off = rom.root(MirrorModel::kRootSlot);
  const auto header = rom.read<PmHeader>(header_off);
  std::vector<std::uint64_t> counters;
  for (auto node_off = header.head; node_off != 0;) {
    const auto node = rom.read<PmLayerNode>(node_off);
    for (std::uint64_t b = 0; b < node.num_buffers; ++b) {
      const auto iv = rom.read<std::array<std::uint8_t, 12>>(node.buf_off[b]);
      std::uint64_t ctr = 0;
      for (int i = 4; i < 12; ++i) ctr = ctr << 8 | iv[i];
      counters.push_back(ctr);
    }
    node_off = node.next;
  }
  return counters;
}

TEST(ParallelSealing, IvCountersStrictlyMonotonicAcrossThreadedSaves) {
  ThreadCountGuard guard;
  par::set_max_threads(4);

  Platform platform(MachineProfile::sgx_emlpm(), 32 * 1024 * 1024);
  romulus::Romulus rom(platform.pm(), 0, 15 * 1024 * 1024,
                       romulus::PwbPolicy::clflushopt_sfence(), true);
  Bytes key(16);
  Rng(77).fill(key.data(), key.size());
  MirrorModel mirror(rom, platform.enclave(), crypto::AesGcm(key));

  Rng rng(1);
  ml::Network net = ml::build_network(ml::make_cnn_config(2, 4, 8), rng);
  mirror.alloc(net);

  std::vector<std::uint64_t> all;
  for (std::uint64_t iter = 1; iter <= 3; ++iter) {
    mirror.mirror_out(net, iter);
    const auto counters = iv_counters(rom);
    ASSERT_FALSE(counters.empty());
    // Within one save, IVs are assigned in buffer list order and each save
    // draws fresh counters — so the concatenation across saves is strictly
    // increasing iff no IV was ever reused or reordered by the parallel
    // sealing pass.
    all.insert(all.end(), counters.begin(), counters.end());
  }
  for (std::size_t i = 1; i < all.size(); ++i) {
    ASSERT_GT(all[i], all[i - 1]) << "IV counter not strictly monotonic at " << i;
  }
  const std::set<std::uint64_t> unique(all.begin(), all.end());
  EXPECT_EQ(unique.size(), all.size()) << "IV reuse detected";

  // And the parallel-sealed mirror still authenticates and restores.
  Rng rng2(2);
  ml::Network net2 = ml::build_network(ml::make_cnn_config(2, 4, 8), rng2);
  EXPECT_EQ(mirror.mirror_in(net2), 3u);
}

// --- end-to-end determinism --------------------------------------------------

struct TrainOutcome {
  std::vector<float> weights;
  std::vector<float> losses;
  double clock_ns;
};

TrainOutcome run_training(std::size_t threads) {
  par::set_max_threads(threads);
  Platform platform(MachineProfile::sgx_emlpm(), 48u << 20, /*platform_seed=*/0xD0);
  ml::SynthDigitsOptions opt;
  opt.train_count = 48;
  opt.test_count = 1;
  const auto digits = make_synth_digits(opt);

  Trainer trainer(platform, ml::make_cnn_config(2, 4, 8), TrainerOptions{});
  trainer.load_dataset(digits.train);
  trainer.train(6);

  TrainOutcome out;
  out.losses = trainer.loss_history();
  out.clock_ns = platform.clock().now();
  ml::Network& net = trainer.network();
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    for (const auto& param : net.layer(l).parameters()) {
      out.weights.insert(out.weights.end(), param.values.begin(), param.values.end());
    }
  }
  return out;
}

TEST(TrainerDeterminism, BitwiseIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  const TrainOutcome serial = run_training(1);
  ASSERT_FALSE(serial.weights.empty());
  ASSERT_EQ(serial.losses.size(), 6u);

  for (const std::size_t threads : {2u, 4u, 8u}) {
    const TrainOutcome parallel = run_training(threads);
    ASSERT_EQ(parallel.weights.size(), serial.weights.size());
    EXPECT_EQ(0, std::memcmp(parallel.weights.data(), serial.weights.data(),
                             serial.weights.size() * sizeof(float)))
        << "weights diverged at " << threads << " host threads";
    EXPECT_EQ(0, std::memcmp(parallel.losses.data(), serial.losses.data(),
                             serial.losses.size() * sizeof(float)))
        << "loss history diverged at " << threads << " host threads";
    // Host threads must not leak into simulated time: exactly equal, not
    // approximately.
    EXPECT_EQ(parallel.clock_ns, serial.clock_ns)
        << "simulated clock diverged at " << threads << " host threads";
  }
}

// Simulated TCS lanes are independent of host threads: raising tcs_count
// shortens simulated time but cannot change the trained weights.
TEST(TrainerDeterminism, TcsCountChangesTimeNotWeights) {
  ThreadCountGuard guard;
  par::set_max_threads(2);

  auto run = [](std::size_t tcs) {
    Platform platform(MachineProfile::sgx_emlpm(), 48u << 20, /*platform_seed=*/0xD1);
    platform.enclave().set_tcs_count(tcs);
    ml::SynthDigitsOptions opt;
    opt.train_count = 48;
    opt.test_count = 1;
    const auto digits = make_synth_digits(opt);
    Trainer trainer(platform, ml::make_cnn_config(2, 4, 8), TrainerOptions{});
    trainer.load_dataset(digits.train);
    trainer.train(4);
    TrainOutcome out;
    out.losses = trainer.loss_history();
    out.clock_ns = platform.clock().now();
    ml::Network& net = trainer.network();
    for (std::size_t l = 0; l < net.num_layers(); ++l) {
      for (const auto& param : net.layer(l).parameters()) {
        out.weights.insert(out.weights.end(), param.values.begin(), param.values.end());
      }
    }
    return out;
  };

  const TrainOutcome one = run(1);
  const TrainOutcome four = run(4);
  ASSERT_EQ(one.weights.size(), four.weights.size());
  EXPECT_EQ(0, std::memcmp(one.weights.data(), four.weights.data(),
                           one.weights.size() * sizeof(float)));
  EXPECT_LT(four.clock_ns, one.clock_ns);
}

}  // namespace
}  // namespace plinius
