#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "ml/config.h"
#include "ml/synth_digits.h"
#include "plinius/distributed.h"

namespace plinius {
namespace {

ml::Dataset small_data(std::size_t rows = 512) {
  ml::SynthDigitsOptions opt;
  opt.train_count = rows;
  opt.test_count = 1;
  return ml::make_synth_digits(opt).train;
}

TEST(Distributed, RejectsBadOptions) {
  ClusterOptions opt;
  opt.workers = 0;
  EXPECT_THROW(DistributedTrainer(MachineProfile::emlsgx_pm(), 48u << 20,
                                  ml::make_cnn_config(2, 4, 8), opt),
               Error);
}

TEST(Distributed, TrainsAndStaysSynchronized) {
  ClusterOptions opt;
  opt.workers = 3;
  opt.sync_every = 4;
  DistributedTrainer cluster(MachineProfile::emlsgx_pm(), 48u << 20,
                             ml::make_cnn_config(2, 4, 16), opt);
  cluster.load_dataset(small_data());
  const float loss = cluster.train(12);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_EQ(cluster.sync_rounds(), 3u);

  // After the final averaging round, all workers hold identical weights.
  const auto ref = cluster.network(0).layer(0).parameters();
  for (std::size_t w = 1; w < cluster.workers(); ++w) {
    const auto other = cluster.network(w).layer(0).parameters();
    for (std::size_t b = 0; b < ref.size(); ++b) {
      for (std::size_t i = 0; i < ref[b].values.size(); ++i) {
        ASSERT_EQ(ref[b].values[i], other[b].values[i])
            << "worker " << w << " buffer " << b << " index " << i;
      }
    }
  }
  // Every worker reached the target.
  for (std::size_t w = 0; w < cluster.workers(); ++w) {
    EXPECT_EQ(cluster.network(w).iterations(), 12u);
  }
  EXPECT_GT(cluster.elapsed_ns(), 0.0);
}

TEST(Distributed, SingleWorkerDegeneratesToLocalTraining) {
  ClusterOptions opt;
  opt.workers = 1;
  opt.sync_every = 4;
  DistributedTrainer cluster(MachineProfile::emlsgx_pm(), 48u << 20,
                             ml::make_cnn_config(2, 4, 8), opt);
  cluster.load_dataset(small_data(64));
  const float loss = cluster.train(8);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_EQ(cluster.sync_rounds(), 0u);  // nothing to average
  EXPECT_EQ(cluster.network(0).iterations(), 8u);
}

TEST(Distributed, KilledWorkerResumesFromItsMirrorAndRejoins) {
  ClusterOptions opt;
  opt.workers = 2;
  opt.sync_every = 5;
  DistributedTrainer cluster(MachineProfile::emlsgx_pm(), 48u << 20,
                             ml::make_cnn_config(2, 4, 16), opt);
  cluster.load_dataset(small_data());
  (void)cluster.train(10);

  cluster.kill_worker(1);
  // Next use reconstructs worker 1 from its PM mirror at iteration 10.
  EXPECT_EQ(cluster.network(1).iterations(), 10u);

  (void)cluster.train(20);
  EXPECT_EQ(cluster.network(0).iterations(), 20u);
  EXPECT_EQ(cluster.network(1).iterations(), 20u);

  // Weights synchronized again after rejoin.
  const auto a = cluster.network(0).layer(1).parameters();
  const auto b = cluster.network(1).layer(1).parameters();
  for (std::size_t i = 0; i < a[0].values.size(); ++i) {
    ASSERT_EQ(a[0].values[i], b[0].values[i]);
  }
}

TEST(Distributed, LearnsTheTask) {
  ml::SynthDigitsOptions dopt;
  dopt.train_count = 2048;
  dopt.test_count = 512;
  const auto digits = ml::make_synth_digits(dopt);

  ClusterOptions opt;
  opt.workers = 2;
  opt.sync_every = 10;
  DistributedTrainer cluster(MachineProfile::emlsgx_pm(), 64u << 20,
                             ml::make_cnn_config(3, 8, 32), opt);
  cluster.load_dataset(digits.train);
  (void)cluster.train(60);

  const double acc = cluster.network(0).accuracy(
      digits.test.x.values.data(), digits.test.y.values.data(), digits.test.size());
  EXPECT_GT(acc, 0.5);
}

TEST(Distributed, SyncCostsCommunicationTime) {
  auto elapsed_with = [](std::size_t sync_every) {
    ClusterOptions opt;
    opt.workers = 4;
    opt.sync_every = sync_every;
    DistributedTrainer cluster(MachineProfile::emlsgx_pm(), 48u << 20,
                               ml::make_cnn_config(2, 4, 16), opt);
    cluster.load_dataset(small_data());
    (void)cluster.train(12);
    return cluster.elapsed_ns();
  };
  // More frequent synchronization = more rounds = more network time.
  EXPECT_GT(elapsed_with(2), elapsed_with(12));
}

}  // namespace
}  // namespace plinius
