// Seeded chaos harness for the recovery ladder: sweeps media-corruption
// targets (mirror copies, Romulus metadata, the data region, the back twin)
// × fault kinds (bit flips, torn lines, poisoned lines) × seeds × optional
// power failure, and asserts for every scenario that (a) training always
// comes back up and completes — zero unhandled throws — and (b) the ladder
// reports exactly the expected recovery tier. Distributed scenarios cover
// the bottom-most rung: peer re-provisioning over the attested channel,
// including lossy channels and exhausted retry budgets.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"
#include "ml/config.h"
#include "ml/synth_digits.h"
#include "pm/device.h"
#include "plinius/distributed.h"
#include "plinius/platform.h"
#include "plinius/trainer.h"
#include "romulus/romulus.h"

namespace plinius {
namespace {

ml::Dataset tiny_dataset(std::size_t rows = 32) {
  ml::SynthDigitsOptions opt;
  opt.train_count = rows;
  opt.test_count = 1;
  return make_synth_digits(opt).train;
}

ml::ModelConfig tiny_config() { return ml::make_cnn_config(2, 4, 8); }

TrainerOptions chaos_options(bool ssd_rung) {
  TrainerOptions opt;
  opt.replicate_mirror = true;
  opt.data_policy = CorruptRecordPolicy::kResample;
  opt.metrics_capacity = 64;
  opt.recovery_log_capacity = 8;
  opt.ssd_checkpoint_every = ssd_rung ? 2 : 0;
  return opt;
}

enum class Kind { kFlip, kTorn, kPoison };
enum class Target {
  kCleanCrash,     // power failure only: resume from the mirror as-is
  kMirrorPrimary,  // A copy rotten -> in-band B-sibling recovery
  kMirrorReplica,  // B copy rotten -> clean resume; scrub repairs it
  kMirrorBoth,     // A and B rotten in main -> back-twin restore
  kMirrorDeep,     // A and B rotten in main AND back -> SSD / fresh rung
  kAllocMeta,      // allocator metadata rotten -> twin restore, then mirror
  kHeader,         // region header rotten -> reformat + SSD / fresh rung
  kBackRegion,     // back twin rotten -> clean resume; scrub resyncs twins
  kDataRecords,    // sealed dataset records rotten -> resample policy
};

const char* to_string(Kind k) {
  switch (k) {
    case Kind::kFlip: return "flip";
    case Kind::kTorn: return "torn";
    case Kind::kPoison: return "poison";
  }
  return "?";
}

const char* to_string(Target t) {
  switch (t) {
    case Target::kCleanCrash: return "clean-crash";
    case Target::kMirrorPrimary: return "mirror-primary";
    case Target::kMirrorReplica: return "mirror-replica";
    case Target::kMirrorBoth: return "mirror-both";
    case Target::kMirrorDeep: return "mirror-deep";
    case Target::kAllocMeta: return "alloc-meta";
    case Target::kHeader: return "header";
    case Target::kBackRegion: return "back-region";
    case Target::kDataRecords: return "data-records";
  }
  return "?";
}

/// Applies one media fault of `kind` guaranteed to damage device extent
/// [off, off+len). Torn lines only garble the second half of a line, so a
/// target confined to a first half falls back to a bit flip; poison prefers
/// a line fully inside the extent so neighbouring allocator block headers
/// stay intact (their corruption is the kAllocMeta scenario's job).
void corrupt(pm::PmDevice& dev, std::size_t off, std::size_t len, Kind kind,
             std::uint64_t seed) {
  Rng rng(seed * 7919 + off);
  switch (kind) {
    case Kind::kFlip: {
      const std::size_t step = std::max<std::size_t>(16, len / 4);
      for (std::size_t i = 0; i < len; i += step) {
        dev.flip_bit(off + i, static_cast<unsigned>(rng.below(8)));
      }
      return;
    }
    case Kind::kTorn: {
      // A line fully inside the extent keeps the damage (the line's second
      // half) off the neighbouring allocator block header.
      const std::size_t interior = off / pm::kCacheLine + 1;
      if ((interior + 1) * pm::kCacheLine <= off + len) {
        dev.tear_line(interior, rng.next());
      } else {
        dev.flip_bit(off, 1);
      }
      return;
    }
    case Kind::kPoison: {
      const std::size_t interior = off / pm::kCacheLine + 1;
      if ((interior + 1) * pm::kCacheLine <= off + len) {
        dev.poison_line(interior, rng.next());
      } else {
        dev.poison_line(off / pm::kCacheLine, rng.next());
      }
      return;
    }
  }
}

// Power-failure mode, applied before the media faults. Process death must
// always be a power cut here: the device's volatile image models the CPU
// cache + DRAM view, and a still-cached line masks media rot until
// eviction — without the cut, a fault under the (pending) header line
// would be invisible to the next attach. The two deterministic extremes
// pin both outcomes of the commit protocol's one unfenced store (the final
// IDLE state write): kPersistAll behaves like a clean ADR-drained
// shutdown, while kDropAll leaves the header in COPYING, so attach-time
// recovery redoes the main->back copy — and thereby propagates main-side
// media rot into the back twin before any scrubber can use it.
enum class Crash { kPersistAll, kDropAll };

const char* to_string(Crash c) {
  switch (c) {
    case Crash::kPersistAll: return "crash-persist";
    case Crash::kDropAll: return "crash-drop";
  }
  return "?";
}

struct Scenario {
  Target target;
  Kind kind;
  bool ssd_rung;
  Crash crash;
  std::uint64_t seed;

  [[nodiscard]] std::string describe() const {
    return std::string(to_string(target)) + "/" + to_string(kind) +
           (ssd_rung ? "/ssd" : "/nossd") + "/" + to_string(crash) + "/seed" +
           std::to_string(seed);
  }
};

RecoveryTier expected_tier(const Scenario& s) {
  // After a kDropAll crash the attach-time COPYING recovery clones the
  // corrupt main over the back twin, demoting twin-dependent repairs.
  const bool twin_lost = s.crash == Crash::kDropAll;
  switch (s.target) {
    case Target::kCleanCrash:
    case Target::kMirrorReplica:
    case Target::kBackRegion:
    case Target::kDataRecords:
      return RecoveryTier::kMirror;
    case Target::kMirrorPrimary:
    case Target::kAllocMeta:
      return RecoveryTier::kReplica;
    case Target::kMirrorBoth:
      if (twin_lost) {
        return s.ssd_rung ? RecoveryTier::kSsdCheckpoint : RecoveryTier::kFreshStart;
      }
      return RecoveryTier::kReplica;
    case Target::kMirrorDeep:
    case Target::kHeader:
      return s.ssd_rung ? RecoveryTier::kSsdCheckpoint : RecoveryTier::kFreshStart;
  }
  return RecoveryTier::kNone;
}

/// One full chaos scenario: train, die, rot the media, resurrect, assert
/// the ladder tier, train to completion.
void run_scenario(const Scenario& s) {
  constexpr std::uint64_t kPhase1Iters = 3;
  constexpr std::uint64_t kPhase2Iters = 5;

  Platform platform(MachineProfile::emlsgx_pm(), 24 * 1024 * 1024);
  const auto data = tiny_dataset();
  const auto config = tiny_config();
  const auto options = chaos_options(s.ssd_rung);

  // Phase 1: healthy training, then process death. Capture the PM layout
  // (device coordinates) before the trainer goes away.
  std::vector<MirrorModel::SealedExtent> extents;
  std::size_t main_dev = 0;
  std::size_t back_dev = 0;
  std::uint64_t records_off = 0;
  std::size_t record_len = 0;
  std::size_t rows = 0;
  std::size_t alloc_meta = romulus::Romulus::alloc_meta_offset();
  {
    Trainer t(platform, config, options);
    t.load_dataset(data);
    t.train(kPhase1Iters);
    extents = t.mirror().sealed_extents();
    main_dev = t.romulus().main_region_offset();
    back_dev = t.romulus().back_region_offset();
    records_off = t.data().records_offset();
    record_len = t.data().record_bytes();
    rows = t.data().rows();
  }
  ASSERT_FALSE(extents.empty());
  // The largest sealed buffer (a weight tensor) — big enough that every
  // fault kind can land strictly inside it.
  const auto big = *std::max_element(
      extents.begin(), extents.end(),
      [](const auto& a, const auto& b) { return a.sealed_len < b.sealed_len; });
  ASSERT_GE(big.sealed_len, 2 * pm::kCacheLine);
  ASSERT_NE(big.replica_off, 0u);

  auto& dev = platform.pm();
  dev.crash(s.crash == Crash::kPersistAll ? pm::PmDevice::CrashOutcome::kPersistAll
                                          : pm::PmDevice::CrashOutcome::kDropAll);

  // Inject the scenario's media faults.
  switch (s.target) {
    case Target::kCleanCrash:
      break;
    case Target::kMirrorPrimary:
      corrupt(dev, main_dev + big.primary_off, big.sealed_len, s.kind, s.seed);
      break;
    case Target::kMirrorReplica:
      corrupt(dev, main_dev + big.replica_off, big.sealed_len, s.kind, s.seed);
      break;
    case Target::kMirrorBoth:
      corrupt(dev, main_dev + big.primary_off, big.sealed_len, s.kind, s.seed);
      corrupt(dev, main_dev + big.replica_off, big.sealed_len, s.kind, s.seed + 1);
      break;
    case Target::kMirrorDeep:
      corrupt(dev, main_dev + big.primary_off, big.sealed_len, s.kind, s.seed);
      corrupt(dev, main_dev + big.replica_off, big.sealed_len, s.kind, s.seed + 1);
      corrupt(dev, back_dev + big.primary_off, big.sealed_len, s.kind, s.seed + 2);
      corrupt(dev, back_dev + big.replica_off, big.sealed_len, s.kind, s.seed + 3);
      break;
    case Target::kAllocMeta:
      corrupt(dev, main_dev + alloc_meta, 24, s.kind, s.seed);
      break;
    case Target::kHeader:
      corrupt(dev, 0, 24, s.kind, s.seed);
      break;
    case Target::kBackRegion:
      corrupt(dev, back_dev + big.primary_off, big.sealed_len, s.kind, s.seed);
      break;
    case Target::kDataRecords:
      for (std::size_t r = 0; r < rows; r += 3) {
        corrupt(dev, main_dev + records_off + r * record_len, record_len, s.kind,
                s.seed + r);
      }
      break;
  }

  // Phase 2: resurrect. The ladder must land on the expected tier and
  // training must run to completion without a single escaped throw.
  Trainer t(platform, config, options);
  t.load_dataset(data);
  const std::uint64_t resumed = t.resume_or_init();
  const RecoveryReport rep = t.last_recovery();

  std::string rungs;
  for (const auto& r : rep.rungs_failed) rungs += "\n  rung failed: " + r;
  EXPECT_EQ(rep.tier, expected_tier(s))
      << "ladder landed on tier '" << to_string(rep.tier) << "'" << rungs;
  EXPECT_EQ(rep.resume_iteration, resumed);
  switch (s.target) {
    case Target::kMirrorPrimary:
      EXPECT_GE(rep.replica_repairs, 1u);
      break;
    case Target::kMirrorReplica: {
      // Resume never touched the rotten sibling; the scrubber must find and
      // repair it from the healthy primary.
      const ScrubReport scrubbed = t.scrub();
      EXPECT_GE(scrubbed.mirror.repaired, 1u);
      EXPECT_TRUE(scrubbed.healthy());
      break;
    }
    case Target::kBackRegion: {
      const ScrubReport scrubbed = t.scrub();
      // A kDropAll crash already resynced the twins at attach (the COPYING
      // recovery overwrote the rotten back copy); otherwise the scrubber
      // must do it.
      if (s.crash != Crash::kDropAll) {
        EXPECT_TRUE(scrubbed.twins_resynced);
      }
      EXPECT_TRUE(scrubbed.healthy());
      EXPECT_EQ(t.romulus().twin_divergence(), 0u);
      break;
    }
    case Target::kDataRecords: {
      ScrubOptions scan;
      scan.scan_dataset = true;
      EXPECT_FALSE(t.scrub(scan).corrupt_records.empty());
      break;
    }
    case Target::kHeader:
      EXPECT_TRUE(rep.region_reformatted);
      EXPECT_TRUE(rep.dataset_lost);
      break;
    case Target::kAllocMeta:
      // With the twin intact the metadata heals in place; once the rot is in
      // both twins, salvaging the weights must rebuild the region.
      EXPECT_EQ(rep.region_reformatted, s.crash == Crash::kDropAll);
      break;
    default:
      break;
  }
  if (rep.tier == RecoveryTier::kSsdCheckpoint) {
    EXPECT_EQ(resumed, kPhase1Iters);
  }
  if (rep.tier == RecoveryTier::kFreshStart) {
    EXPECT_EQ(resumed, 0u);
  }
  if (rep.tier == RecoveryTier::kMirror || rep.tier == RecoveryTier::kReplica) {
    EXPECT_EQ(resumed, kPhase1Iters);
  }

  // Every recovery episode is in the persistent log (the header scenario
  // reformats the region, so its log restarts with exactly this episode).
  ASSERT_TRUE(t.recovery_log().exists());
  ASSERT_GE(t.recovery_log().size(), 1u);
  const RecoveryRecord logged = t.recovery_log().all().back();
  EXPECT_EQ(logged.tier, static_cast<std::uint64_t>(rep.tier));
  EXPECT_EQ(logged.resume_iteration, rep.resume_iteration);
  EXPECT_EQ(logged.flags, rep.flags());

  t.train(kPhase2Iters);
  EXPECT_EQ(t.network().iterations(), kPhase2Iters);
  t.verify_persistent_state();
}

TEST(ChaosRecovery, SweepCorruptionByCrashGrid) {
  const Target targets[] = {
      Target::kCleanCrash,  Target::kMirrorPrimary, Target::kMirrorReplica,
      Target::kMirrorBoth,  Target::kMirrorDeep,    Target::kAllocMeta,
      Target::kHeader,      Target::kBackRegion,    Target::kDataRecords,
  };
  const Kind kinds[] = {Kind::kFlip, Kind::kTorn, Kind::kPoison};

  const Crash crashes[] = {Crash::kPersistAll, Crash::kDropAll};

  std::vector<Scenario> scenarios;
  for (const Target target : targets) {
    for (const Kind kind : kinds) {
      for (const bool ssd_rung : {false, true}) {
        for (const Crash crash : crashes) {
          for (int rep = 0; rep < 3; ++rep) {
            const auto n = static_cast<std::uint64_t>(scenarios.size());
            scenarios.push_back({target, kind, ssd_rung, crash, 0xC0FFEE + 31 * n});
          }
        }
      }
    }
  }
  ASSERT_GE(scenarios.size(), 200u)
      << "acceptance: the chaos sweep must cover at least 200 seeded scenarios";

  for (const Scenario& s : scenarios) {
    SCOPED_TRACE(s.describe());
    ASSERT_NO_FATAL_FAILURE(run_scenario(s));
    if (::testing::Test::HasFailure()) {
      FAIL() << "stopping the sweep at the first failing scenario: "
             << s.describe();
    }
  }
}

// --- distributed rung: re-provisioning from a healthy peer --------------------

class ChaosDistributed : public ::testing::Test {
 protected:
  ClusterOptions cluster_options(double loss, bool provision = true) {
    ClusterOptions opt;
    opt.workers = 3;
    opt.sync_every = 2;
    opt.trainer = chaos_options(/*ssd_rung=*/false);
    opt.peer_provision = provision;
    opt.peer_loss_rate = loss;
    opt.peer_retries = 8;
    return opt;
  }

  /// Kills worker 0 and rots its region header so its local ladder bottoms
  /// out in a fresh start (region reformat, all local state gone).
  static void obliterate_worker0(DistributedTrainer& cluster) {
    auto& dev = cluster.trainer(0).platform().pm();
    cluster.kill_worker(0);
    dev.flip_bit(1, 4);
    dev.flip_bit(5, 2);
  }
};

TEST_F(ChaosDistributed, LadderBottomPullsParametersFromPeer) {
  DistributedTrainer cluster(MachineProfile::emlsgx_pm(), 48u << 20, tiny_config(),
                             cluster_options(/*loss=*/0.0));
  cluster.load_dataset(tiny_dataset(48));
  cluster.train(4);
  obliterate_worker0(cluster);
  cluster.train(8);

  EXPECT_EQ(cluster.stats().peer_provisions, 1u);
  EXPECT_EQ(cluster.stats().peer_provision_failures, 0u);
  EXPECT_EQ(cluster.trainer(0).last_recovery().tier, RecoveryTier::kPeer);
  EXPECT_EQ(cluster.network(0).iterations(), 8u);
}

TEST_F(ChaosDistributed, LossyChannelRetriesWithBackoff) {
  DistributedTrainer cluster(MachineProfile::emlsgx_pm(), 48u << 20, tiny_config(),
                             cluster_options(/*loss=*/0.9));
  cluster.load_dataset(tiny_dataset(48));
  cluster.train(4);
  obliterate_worker0(cluster);
  cluster.train(8);

  // Seeded channel: the retry/backoff path must actually run, and the
  // episode must end either delivered or accounted as a failure — never an
  // escaped throw.
  EXPECT_GT(cluster.stats().peer_retries, 0u);
  EXPECT_EQ(cluster.stats().peer_provisions + cluster.stats().peer_provision_failures,
            1u);
  EXPECT_EQ(cluster.network(0).iterations(), 8u);
}

TEST_F(ChaosDistributed, DeadChannelExhaustsRetriesAndKeepsFreshStart) {
  DistributedTrainer cluster(MachineProfile::emlsgx_pm(), 48u << 20, tiny_config(),
                             cluster_options(/*loss=*/1.0));
  cluster.load_dataset(tiny_dataset(48));
  cluster.train(4);
  obliterate_worker0(cluster);
  cluster.train(8);

  EXPECT_EQ(cluster.stats().peer_provisions, 0u);
  EXPECT_EQ(cluster.stats().peer_provision_failures, 1u);
  // Initial attempt + 8 retries, all dropped by the dead channel.
  EXPECT_EQ(cluster.stats().peer_retries, 9u);
  EXPECT_EQ(cluster.trainer(0).last_recovery().tier, RecoveryTier::kFreshStart);
  // The worker still completes training — it catches up at averaging rounds.
  EXPECT_EQ(cluster.network(0).iterations(), 8u);
}

TEST_F(ChaosDistributed, ProvisioningDisabledKeepsFreshStart) {
  DistributedTrainer cluster(MachineProfile::emlsgx_pm(), 48u << 20, tiny_config(),
                             cluster_options(/*loss=*/0.0, /*provision=*/false));
  cluster.load_dataset(tiny_dataset(48));
  cluster.train(4);
  obliterate_worker0(cluster);
  cluster.train(8);

  EXPECT_EQ(cluster.stats().peer_provisions, 0u);
  EXPECT_EQ(cluster.trainer(0).last_recovery().tier, RecoveryTier::kFreshStart);
  EXPECT_EQ(cluster.network(0).iterations(), 8u);
}

}  // namespace
}  // namespace plinius
